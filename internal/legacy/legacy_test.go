package legacy

import (
	"testing"

	"pepc/internal/gtp"
	"pepc/internal/pkt"
)

func buildUplink(pool *pkt.Pool, teid, src uint32) *pkt.Buf {
	b := pool.Get()
	inner := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + 32
	data, _ := b.Append(inner)
	ip := pkt.IPv4{Length: uint16(inner), TTL: 64, Protocol: pkt.ProtoUDP, Src: src, Dst: pkt.IPv4Addr(8, 8, 8, 8)}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: 1000, DstPort: 80, Length: uint16(pkt.UDPHeaderLen + 32)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	gtp.EncapGPDU(b, teid, 1, 2)
	return b
}

func buildDownlink(pool *pkt.Pool, dst uint32) *pkt.Buf {
	b := pool.Get()
	inner := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + 32
	data, _ := b.Append(inner)
	ip := pkt.IPv4{Length: uint16(inner), TTL: 64, Protocol: pkt.ProtoUDP, Src: pkt.IPv4Addr(8, 8, 8, 8), Dst: dst}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: 80, DstPort: 1000, Length: uint16(pkt.UDPHeaderLen + 32)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	return b
}

func TestPresetsResolve(t *testing.T) {
	for _, p := range []Preset{Industrial1, Industrial2, OAI, OpenEPC} {
		e := New(Config{Preset: p})
		cfg := e.Config()
		if cfg.SignalingAmplification == 0 {
			t.Fatalf("%v: no signaling amplification", p)
		}
		if p == Industrial1 && !cfg.Classify {
			t.Fatal("Industrial#1 must classify (ADC)")
		}
		if p == Industrial2 && cfg.Classify {
			t.Fatal("Industrial#2 must not classify")
		}
		if (p == OAI || p == OpenEPC) && !cfg.KernelPath {
			t.Fatalf("%v must use the kernel path", p)
		}
	}
}

func TestAttachDuplicatesStateAcrossComponents(t *testing.T) {
	e := New(Config{Preset: Industrial1, UserHint: 16})
	up, ip, err := e.Attach(100, 0xE0, pkt.IPv4Addr(192, 168, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if up == 0 || ip == 0 {
		t.Fatalf("ids: teid=%#x ip=%#x", up, ip)
	}
	// All three components hold a copy — the duplication §2.3 describes.
	e.mme.mu.RLock()
	mmeCopy := e.mme.sessions[100]
	e.mme.mu.RUnlock()
	e.sgw.mu.RLock()
	sgwCopy := e.sgw.byIMSI[100]
	e.sgw.mu.RUnlock()
	e.pgw.mu.RLock()
	pgwCopy := e.pgw.byIMSI[100]
	e.pgw.mu.RUnlock()
	if mmeCopy == nil || sgwCopy == nil || pgwCopy == nil {
		t.Fatal("state not duplicated in all components")
	}
	if mmeCopy == sgwCopy || sgwCopy == pgwCopy {
		t.Fatal("components share a pointer; duplication not modelled")
	}
	if mmeCopy.ueAddr != ip || sgwCopy.ueAddr != ip || pgwCopy.ueAddr != ip {
		t.Fatal("UE address not synchronized to all copies")
	}
	if _, _, err := e.Attach(100, 1, 1); err != ErrExists {
		t.Fatalf("duplicate attach: %v", err)
	}
	if e.Users() != 1 {
		t.Fatalf("users = %d", e.Users())
	}
}

func TestUplinkTraversesBothGateways(t *testing.T) {
	e := New(Config{Preset: Industrial1, UserHint: 16})
	up, ip, _ := e.Attach(1, 0xE0, 5)
	pool := pkt.NewPool(2048, 128)
	var out *pkt.Buf
	e.Egress = func(b *pkt.Buf) { out = b }
	e.ProcessUplinkBatch([]*pkt.Buf{buildUplink(pool, up, ip)}, 0)
	if e.Forwarded != 1 || out == nil {
		t.Fatalf("forwarded=%d missed=%d dropped=%d", e.Forwarded, e.Missed, e.Dropped)
	}
	// The emitted packet is the inner IP packet (all tunnels stripped).
	var oip pkt.IPv4
	if err := oip.DecodeFromBytes(out.Bytes()); err != nil {
		t.Fatal(err)
	}
	if oip.Src != ip {
		t.Fatalf("inner src = %s", pkt.FormatIPv4(oip.Src))
	}
	out.Free()
	// Counters duplicated at S-GW and P-GW.
	e.sgw.mu.RLock()
	sp := e.sgw.byIMSI[1].upPkts
	e.sgw.mu.RUnlock()
	e.pgw.mu.RLock()
	pp := e.pgw.byIMSI[1].upPkts
	e.pgw.mu.RUnlock()
	if sp != 1 || pp != 1 {
		t.Fatalf("counters: sgw=%d pgw=%d", sp, pp)
	}
}

func TestDownlinkReachesENB(t *testing.T) {
	e := New(Config{Preset: Industrial2, UserHint: 16})
	_, ip, _ := e.Attach(2, 0xBEEF, pkt.IPv4Addr(192, 168, 0, 9))
	pool := pkt.NewPool(2048, 128)
	var out *pkt.Buf
	e.Egress = func(b *pkt.Buf) { out = b }
	e.ProcessDownlinkBatch([]*pkt.Buf{buildDownlink(pool, ip)}, 0)
	if e.Forwarded != 1 || out == nil {
		t.Fatalf("forwarded=%d missed=%d dropped=%d", e.Forwarded, e.Missed, e.Dropped)
	}
	teid, err := gtp.DecapGPDU(out)
	if err != nil || teid != 0xBEEF {
		t.Fatalf("downlink tunnel: teid=%#x err=%v", teid, err)
	}
	out.Free()
}

func TestHandoverUpdatesAllCopies(t *testing.T) {
	e := New(Config{Preset: Industrial1, UserHint: 16})
	e.Attach(3, 0x10, 1)
	if err := e.S1Handover(3, 0x20, 7); err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]uint32{
		"mme": e.mme.sessions[3].enbTEID,
		"sgw": e.sgw.byIMSI[3].enbTEID,
		"pgw": e.pgw.byIMSI[3].enbTEID,
	} {
		if got != 0x20 {
			t.Fatalf("%s copy not updated: %#x", name, got)
		}
	}
	if err := e.S1Handover(99, 1, 1); err != ErrUnknown {
		t.Fatalf("unknown handover: %v", err)
	}
}

func TestUnknownTrafficDropped(t *testing.T) {
	e := New(Config{Preset: Industrial1, UserHint: 16})
	pool := pkt.NewPool(2048, 128)
	e.ProcessUplinkBatch([]*pkt.Buf{buildUplink(pool, 0xBAD, 1)}, 0)
	if e.Missed != 1 {
		t.Fatalf("missed = %d", e.Missed)
	}
	e.ProcessDownlinkBatch([]*pkt.Buf{buildDownlink(pool, 0xBAD)}, 0)
	if e.Missed != 2 {
		t.Fatalf("missed = %d", e.Missed)
	}
}

func TestKernelPathStillForwards(t *testing.T) {
	e := New(Config{Preset: OAI, UserHint: 16})
	up, ip, _ := e.Attach(4, 0xE0, 5)
	pool := pkt.NewPool(2048, 128)
	got := 0
	e.Egress = func(b *pkt.Buf) { got++; b.Free() }
	for i := 0; i < 10; i++ {
		e.ProcessUplinkBatch([]*pkt.Buf{buildUplink(pool, up, ip)}, 0)
	}
	if got != 10 || e.Forwarded != 10 {
		t.Fatalf("kernel path forwarded %d/%d", got, e.Forwarded)
	}
}

// The central performance claim the baseline must exhibit: its per-packet
// cost exceeds PEPC's because of the second tunnel hop, the duplicated
// counters and (for Industrial#1) classification. Verified indirectly by
// the Fig 4 bench; here we just check the pipeline performs the double
// tunnel work (egress packet saw two decaps).
func TestPipelinePerformsTwoTunnelHops(t *testing.T) {
	e := New(Config{Preset: Industrial1, UserHint: 16})
	up, ip, _ := e.Attach(5, 0xE0, 5)
	pool := pkt.NewPool(2048, 128)
	var headroom int
	e.Egress = func(b *pkt.Buf) { headroom = b.Headroom(); b.Free() }
	b := buildUplink(pool, up, ip)
	start := b.Headroom()
	e.ProcessUplinkBatch([]*pkt.Buf{b}, 0)
	// Two decaps and one encap net one extra stripped tunnel: headroom
	// grows by exactly one tunnel header stack.
	if headroom <= start {
		t.Fatalf("headroom did not grow: %d -> %d", start, headroom)
	}
}

func BenchmarkLegacyUplink(b *testing.B) {
	for _, preset := range []Preset{Industrial1, Industrial2} {
		b.Run(preset.String(), func(b *testing.B) {
			e := New(Config{Preset: preset, UserHint: 1024})
			up, ip, _ := e.Attach(1, 0xE0, 5)
			pool := pkt.NewPool(2048, 128)
			e.Egress = func(buf *pkt.Buf) { buf.Free() }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ProcessUplinkBatch([]*pkt.Buf{buildUplink(pool, up, ip)}, 0)
			}
		})
	}
}

func BenchmarkLegacyAttach(b *testing.B) {
	e := New(Config{Preset: Industrial1, UserHint: 1 << 20})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Attach(uint64(i+1), 1, 2)
	}
}
