// Package legacy implements the baseline the paper compares against: a
// conventionally *decomposed* EPC with separate MME, S-GW and P-GW
// components, each holding its own duplicated copy of per-user state
// (Table 1's legacy columns), synchronized over GTP-C on every signaling
// event (§2.3). Configuration presets model the measured systems:
// Industrial#1, Industrial#2 (from [37]), OpenAirInterface, and OpenEPC.
//
// Modeling notes (see DESIGN.md): the proprietary baselines are black
// boxes, so this package reproduces the *structural* properties the
// paper blames for their scaling behaviour rather than their code:
//
//  1. Duplicated state: attach/handover updates run the GTP-C codec and
//     take each component's table-level write lock in turn (the paper's
//     measured MME→S-GW→P-GW propagation).
//  2. Shared fate of signaling and data: signaling events are processed
//     by the same run-to-completion loop as data packets, so signaling
//     work displaces data work — the mechanism behind Industrial#1's
//     data-plane collapse above 10K attach/s (§2.2).
//  3. Single big state tables: two table lookups per packet (S-GW then
//     P-GW) against one flat map per component, degrading with
//     population size (§3.2).
//  4. The no-kernel-bypass systems (OAI, OpenEPC) additionally pay a
//     per-packet copy + allocation + queue hop, the portable equivalent
//     of their missing DPDK (§6.1).
package legacy

import (
	"errors"
	"sync"

	"pepc/internal/gtp"
	"pepc/internal/pkt"
)

// Preset selects a modelled baseline system.
type Preset uint8

// Presets.
const (
	// Industrial1 is the DPDK EPC with GTP + ADC + PCEF the paper tests
	// directly.
	Industrial1 Preset = iota
	// Industrial2 is the DPDK EPC from Rajan et al. [37]: GTP but no
	// ADC/PCEF, so a lighter per-packet pipeline.
	Industrial2
	// OAI is OpenAirInterface: full decomposition plus kernel-path I/O.
	OAI
	// OpenEPC is the PhantomNet OpenEPC binary: like OAI with a heavier
	// control plane.
	OpenEPC
)

// String implements fmt.Stringer.
func (p Preset) String() string {
	switch p {
	case Industrial1:
		return "Industrial#1"
	case Industrial2:
		return "Industrial#2"
	case OAI:
		return "OpenAirInterface"
	case OpenEPC:
		return "OpenEPC"
	}
	return "preset(?)"
}

// Config parameterizes the baseline.
type Config struct {
	Preset   Preset
	UserHint int
	// SignalingAmplification is how many GTP-C codec round trips each
	// signaling event performs across the component chain (state
	// duplication cost). Presets set it.
	SignalingAmplification int
	// Classify enables the ADC/PCEF-style per-packet classification
	// stage (Industrial#1 has it, Industrial#2 does not).
	Classify bool
	// KernelPath adds the per-packet copy/alloc/queue-hop of a
	// non-DPDK stack.
	KernelPath bool
}

func (c Config) withDefaults() Config {
	if c.UserHint <= 0 {
		c.UserHint = 1 << 16
	}
	if c.SignalingAmplification == 0 {
		switch c.Preset {
		case Industrial1:
			c.SignalingAmplification = 24
			c.Classify = true
		case Industrial2:
			c.SignalingAmplification = 16
		case OAI:
			c.SignalingAmplification = 24
			c.KernelPath = true
		case OpenEPC:
			c.SignalingAmplification = 48
			c.KernelPath = true
		}
	}
	return c
}

// session is the per-user state every component duplicates (the paper's
// point: three copies of the same fields).
type session struct {
	imsi     uint64
	ueAddr   uint32
	enbTEID  uint32 // eNodeB's downlink endpoint
	enbAddr  uint32
	s1uTEID  uint32 // S-GW's uplink TEID (eNodeB sends here)
	s5TEIDUp uint32 // P-GW's TEID on the S5 tunnel
	s5TEIDDn uint32 // S-GW's TEID on the S5 tunnel
	qciClass uint8
	// counters (S-GW and P-GW both keep them; Table 1)
	upPkts, upBytes, dnPkts, dnBytes uint64
}

// MME holds signaling state and drives the synchronization chain.
type MME struct {
	mu       sync.RWMutex
	sessions map[uint64]*session
	seq      uint32
}

// SGW holds the duplicated session table indexed by uplink TEID and the
// data path's first hop.
type SGW struct {
	mu       sync.RWMutex
	byTEID   map[uint32]*session
	byIMSI   map[uint64]*session
	nextTEID uint32
}

// PGW holds the third copy, indexed by UE address for downlink.
type PGW struct {
	mu       sync.RWMutex
	byIP     map[uint32]*session
	byTEID   map[uint32]*session
	byIMSI   map[uint64]*session
	nextTEID uint32
	nextIP   uint32
}

// EPC is the composed baseline: the classic MME + S-GW + P-GW triplet.
type EPC struct {
	cfg Config
	mme *MME
	sgw *SGW
	pgw *PGW

	// Egress receives forwarded packets (like PEPC's slice egress); the
	// harness drains it.
	Egress func(*pkt.Buf)

	// Stats.
	Forwarded uint64
	Dropped   uint64
	Missed    uint64
	Attaches  uint64
	Handovers uint64

	// kernel-path scratch
	kq    chan *pkt.Buf
	kpool *pkt.Pool
}

// Errors.
var (
	ErrExists  = errors.New("legacy: user already attached")
	ErrUnknown = errors.New("legacy: user not found")
)

// New builds a baseline EPC.
func New(cfg Config) *EPC {
	cfg = cfg.withDefaults()
	e := &EPC{
		cfg:    cfg,
		mme:    &MME{sessions: make(map[uint64]*session, cfg.UserHint)},
		sgw:    &SGW{byTEID: make(map[uint32]*session, cfg.UserHint), byIMSI: make(map[uint64]*session, cfg.UserHint)},
		pgw:    &PGW{byIP: make(map[uint32]*session, cfg.UserHint), byTEID: make(map[uint32]*session, cfg.UserHint), byIMSI: make(map[uint64]*session, cfg.UserHint)},
		Egress: func(b *pkt.Buf) { b.Free() },
	}
	if cfg.KernelPath {
		e.kq = make(chan *pkt.Buf, 64)
		e.kpool = pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	}
	return e
}

// Config returns the configuration after preset resolution.
func (e *EPC) Config() Config { return e.cfg }

// Users returns the attached population (from the S-GW copy).
func (e *EPC) Users() int {
	e.sgw.mu.RLock()
	defer e.sgw.mu.RUnlock()
	return len(e.sgw.byTEID)
}

// Attach runs the legacy attach synchronization chain: the MME creates
// state, then a Create Session Request propagates MME → S-GW → P-GW, with
// each component decoding the message, taking its table write lock, and
// installing its duplicate copy; responses flow back. The GTP-C codec
// runs SignalingAmplification times to model the full message flow (the
// real chain is ~a dozen messages each way plus retransmission timers).
func (e *EPC) Attach(imsi uint64, enbTEID, enbAddr uint32) (uplinkTEID, ueAddr uint32, err error) {
	// MME copy.
	e.mme.mu.Lock()
	if _, dup := e.mme.sessions[imsi]; dup {
		e.mme.mu.Unlock()
		return 0, 0, ErrExists
	}
	e.mme.seq++
	seq := e.mme.seq
	s := &session{imsi: imsi, enbTEID: enbTEID, enbAddr: enbAddr, qciClass: 9}
	e.mme.sessions[imsi] = s
	e.mme.mu.Unlock()

	// MME → S-GW Create Session (codec runs for real).
	req := gtp.BuildCreateSession(gtp.SessionRequest{IMSI: imsi, TEID: enbTEID, Seq: seq})
	wire := req.Marshal()
	e.churnCodec(wire)

	// S-GW copy.
	e.sgw.mu.Lock()
	e.sgw.nextTEID++
	up := 0x5000_0000 | e.sgw.nextTEID
	sgwCopy := *s
	sgwCopy.s1uTEID = up
	e.sgw.byTEID[up] = &sgwCopy
	e.sgw.byIMSI[imsi] = &sgwCopy
	e.sgw.mu.Unlock()

	// S-GW → P-GW Create Session.
	req2 := gtp.BuildCreateSession(gtp.SessionRequest{IMSI: imsi, TEID: up, Seq: seq})
	wire2 := req2.Marshal()
	e.churnCodec(wire2)

	// P-GW copy + address allocation.
	e.pgw.mu.Lock()
	e.pgw.nextTEID++
	e.pgw.nextIP++
	s5 := 0x7000_0000 | e.pgw.nextTEID
	ip := pkt.IPv4Addr(100, 64, 0, 0) + e.pgw.nextIP
	pgwCopy := sgwCopy
	pgwCopy.s5TEIDUp = s5
	pgwCopy.ueAddr = ip
	e.pgw.byIP[ip] = &pgwCopy
	e.pgw.byTEID[s5] = &pgwCopy
	e.pgw.byIMSI[imsi] = &pgwCopy
	e.pgw.mu.Unlock()

	// Responses propagate back, updating the upstream duplicates (more
	// write locks, more codec).
	resp := gtp.BuildResponse(gtp.GTPCCreateSessionRequest, seq, gtp.CauseAccepted)
	e.churnCodec(resp.Marshal())
	e.sgw.mu.Lock()
	sgwSess := e.sgw.byIMSI[imsi]
	sgwSess.s5TEIDUp = s5
	sgwSess.ueAddr = ip
	e.sgw.mu.Unlock()
	e.mme.mu.Lock()
	s.ueAddr = ip
	s.s1uTEID = up
	e.mme.mu.Unlock()

	e.Attaches++
	return up, ip, nil
}

// AttachEvent applies the state-synchronization work of an attach event
// to an existing session: the full MME → S-GW → P-GW chain re-installs
// the user's QoS/policy and tunnel state under each component's write
// lock, with the GTP-C codec doing the message work — the cost PEPC's
// consolidation removes.
func (e *EPC) AttachEvent(imsi uint64) error {
	e.mme.mu.Lock()
	s, ok := e.mme.sessions[imsi]
	if !ok {
		e.mme.mu.Unlock()
		return ErrUnknown
	}
	e.mme.seq++
	seq := e.mme.seq
	s.qciClass = 9
	enbTEID := s.enbTEID
	e.mme.mu.Unlock()

	req := gtp.BuildCreateSession(gtp.SessionRequest{IMSI: imsi, TEID: enbTEID, Seq: seq})
	e.churnCodec(req.Marshal())
	e.sgw.mu.Lock()
	if ss := e.sgw.byIMSI[imsi]; ss != nil {
		ss.qciClass = 9
	}
	e.sgw.mu.Unlock()
	e.churnCodec(req.Marshal())
	e.pgw.mu.Lock()
	if ps := e.pgw.byIMSI[imsi]; ps != nil {
		ps.qciClass = 9
	}
	e.pgw.mu.Unlock()
	resp := gtp.BuildResponse(gtp.GTPCCreateSessionRequest, seq, gtp.CauseAccepted)
	e.churnCodec(resp.Marshal())
	e.Attaches++
	return nil
}

// S1Handover runs the legacy handover chain: Modify Bearer propagates
// through all three components, each updating its duplicate tunnel state
// under its write lock.
func (e *EPC) S1Handover(imsi uint64, newENBTEID, newENBAddr uint32) error {
	e.mme.mu.Lock()
	s, ok := e.mme.sessions[imsi]
	if !ok {
		e.mme.mu.Unlock()
		return ErrUnknown
	}
	e.mme.seq++
	seq := e.mme.seq
	s.enbTEID = newENBTEID
	s.enbAddr = newENBAddr
	e.mme.mu.Unlock()

	req := gtp.BuildModifyBearer(gtp.SessionRequest{IMSI: imsi, TEID: newENBTEID, PeerAddr: newENBAddr, Seq: seq})
	e.churnCodec(req.Marshal())

	e.sgw.mu.Lock()
	if ss := e.sgw.byIMSI[imsi]; ss != nil {
		ss.enbTEID = newENBTEID
		ss.enbAddr = newENBAddr
	}
	e.sgw.mu.Unlock()

	e.churnCodec(req.Marshal())
	e.pgw.mu.Lock()
	if ps := e.pgw.byIMSI[imsi]; ps != nil {
		ps.enbTEID = newENBTEID
		ps.enbAddr = newENBAddr
	}
	e.pgw.mu.Unlock()

	resp := gtp.BuildResponse(gtp.GTPCModifyBearerRequest, seq, gtp.CauseAccepted)
	e.churnCodec(resp.Marshal())
	e.Handovers++
	return nil
}

// churnCodec performs the per-event protocol work: repeated
// marshal/unmarshal of the synchronization messages, standing in for the
// full multi-message exchange (requests, responses, acknowledgements,
// HSS/PCRF legs) of the real chain.
func (e *EPC) churnCodec(wire []byte) {
	for i := 0; i < e.cfg.SignalingAmplification; i++ {
		m, err := gtp.UnmarshalGTPC(wire)
		if err != nil {
			return
		}
		wire = m.Marshal()
	}
}

// ProcessUplinkBatch runs the legacy uplink pipeline: S-GW decap + lookup
// (table read lock), re-encapsulation onto the S5 tunnel, P-GW decap +
// lookup (second table, second lock), optional classification, counters,
// emit. Signaling events interleave on the same loop via the harness.
func (e *EPC) ProcessUplinkBatch(batch []*pkt.Buf, now int64) {
	for _, b := range batch {
		e.processUplink(b, now)
	}
}

func (e *EPC) processUplink(b *pkt.Buf, now int64) {
	_ = now
	if e.cfg.KernelPath {
		b = e.kernelHop(b)
		if b == nil {
			return
		}
	}
	// S-GW hop.
	teid, err := gtp.DecapGPDU(b)
	if err != nil {
		e.Dropped++
		b.Free()
		return
	}
	e.sgw.mu.RLock()
	s := e.sgw.byTEID[teid]
	e.sgw.mu.RUnlock()
	if s == nil {
		e.Missed++
		b.Free()
		return
	}
	// Re-encapsulate onto S5 toward the P-GW, as the real S-GW does.
	if err := gtp.EncapGPDU(b, s.s5TEIDUp, 1, 2); err != nil {
		e.Dropped++
		b.Free()
		return
	}
	if e.cfg.KernelPath {
		b = e.kernelHop(b)
		if b == nil {
			return
		}
	}
	// P-GW hop.
	s5, err := gtp.DecapGPDU(b)
	if err != nil {
		e.Dropped++
		b.Free()
		return
	}
	e.pgw.mu.RLock()
	p := e.pgw.byTEID[s5]
	e.pgw.mu.RUnlock()
	if p == nil {
		e.Missed++
		b.Free()
		return
	}
	if e.cfg.Classify {
		classifyInner(b.Bytes())
	}
	// Counters on both data components (duplicated per Table 1). The
	// single data thread owns them; the coarse table lock covered the
	// lookup only, as in the modelled systems.
	e.sgw.mu.Lock()
	s.upPkts++
	s.upBytes += uint64(b.Len())
	e.sgw.mu.Unlock()
	e.pgw.mu.Lock()
	p.upPkts++
	p.upBytes += uint64(b.Len())
	e.pgw.mu.Unlock()
	e.Forwarded++
	e.Egress(b)
}

// ProcessDownlinkBatch is the reverse pipeline: P-GW lookup by UE
// address, S5 encapsulation, S-GW swap onto the eNodeB tunnel.
func (e *EPC) ProcessDownlinkBatch(batch []*pkt.Buf, now int64) {
	for _, b := range batch {
		e.processDownlink(b, now)
	}
}

func (e *EPC) processDownlink(b *pkt.Buf, now int64) {
	_ = now
	if e.cfg.KernelPath {
		b = e.kernelHop(b)
		if b == nil {
			return
		}
	}
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(b.Bytes()); err != nil {
		e.Dropped++
		b.Free()
		return
	}
	e.pgw.mu.RLock()
	p := e.pgw.byIP[ip.Dst]
	e.pgw.mu.RUnlock()
	if p == nil {
		e.Missed++
		b.Free()
		return
	}
	if e.cfg.Classify {
		classifyInner(b.Bytes())
	}
	// P-GW → S-GW over S5.
	if err := gtp.EncapGPDU(b, p.s5TEIDUp, 2, 1); err != nil {
		e.Dropped++
		b.Free()
		return
	}
	if e.cfg.KernelPath {
		b = e.kernelHop(b)
		if b == nil {
			return
		}
	}
	// S-GW swaps tunnels onto the eNodeB.
	if _, err := gtp.DecapGPDU(b); err != nil {
		e.Dropped++
		b.Free()
		return
	}
	e.sgw.mu.RLock()
	s := e.sgw.byIMSI[p.imsi]
	e.sgw.mu.RUnlock()
	if s == nil {
		e.Missed++
		b.Free()
		return
	}
	if err := gtp.EncapGPDU(b, s.enbTEID, 1, s.enbAddr); err != nil {
		e.Dropped++
		b.Free()
		return
	}
	e.sgw.mu.Lock()
	s.dnPkts++
	s.dnBytes += uint64(b.Len())
	e.sgw.mu.Unlock()
	e.pgw.mu.Lock()
	p.dnPkts++
	p.dnBytes += uint64(b.Len())
	e.pgw.mu.Unlock()
	e.Forwarded++
	e.Egress(b)
}

// kernelHop models the no-kernel-bypass path: the packet is copied into
// a fresh buffer (skb allocation + copy_from_user), crosses a queue
// (softirq hand-off), and pays the protocol-stack traversal — checksum
// validation, routing, netfilter — modelled as checksum passes over the
// packet, the portable equivalent of the per-packet kernel work DPDK
// removes. Returns the new buffer.
func (e *EPC) kernelHop(b *pkt.Buf) *pkt.Buf {
	nb := e.kpool.Get()
	if err := nb.SetBytes(b.Bytes()); err != nil {
		b.Free()
		nb.Free()
		e.Dropped++
		return nil
	}
	nb.Meta = b.Meta
	b.Free()
	select {
	case e.kq <- nb:
	default:
		nb.Free()
		e.Dropped++
		return nil
	}
	out := <-e.kq
	// Protocol-stack traversal work per hop.
	var acc uint16
	for i := 0; i < kernelStackPasses; i++ {
		acc ^= pkt.Checksum(out.Bytes())
	}
	if acc == 0xdead {
		// Data-dependent use so the work cannot be optimized away.
		out.Meta.TSNanos ^= 1
	}
	return out
}

// kernelStackPasses calibrates the per-hop kernel-path work so the
// modelled OAI/OpenEPC land an order of magnitude below the DPDK
// systems, as the paper measures (§6.1).
const kernelStackPasses = 24

// classifyInner is the ADC-style per-packet application classification:
// a linear scan over the header fields plus a few payload bytes, the
// work an application-detection stage performs per packet.
func classifyInner(data []byte) uint32 {
	var acc uint32
	n := len(data)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		acc = acc*31 + uint32(data[i])
	}
	return acc
}
