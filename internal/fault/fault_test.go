package fault

import (
	"testing"
	"time"
)

// Two injectors with the same seed must produce identical decision
// streams per kind, independent of interleaving with other kinds.
func TestDeterministicStream(t *testing.T) {
	a := New(42)
	b := New(42)
	a.Arm(DiameterDrop, RateMax/3)
	a.Arm(SCTPLoss, RateMax/7)
	b.Arm(DiameterDrop, RateMax/3)
	b.Arm(SCTPLoss, RateMax/7)

	for n := 0; n < 1000; n++ {
		if a.Fire(DiameterDrop) != b.Fire(DiameterDrop) {
			t.Fatalf("drop stream diverged at decision %d", n)
		}
		// Interleave extra SCTPLoss decisions on a only; the drop
		// stream must not shift.
		_ = a.Fire(SCTPLoss)
	}
	if a.Fired(DiameterDrop) != b.Fired(DiameterDrop) {
		t.Fatalf("fired counts diverged: %d vs %d", a.Fired(DiameterDrop), b.Fired(DiameterDrop))
	}
}

func TestRateBounds(t *testing.T) {
	i := New(7)
	i.Arm(RingOverflow, RateMax) // always
	for n := 0; n < 100; n++ {
		if !i.Fire(RingOverflow) {
			t.Fatalf("rate RateMax must always fire (decision %d)", n)
		}
	}
	i.Arm(RingOverflow, 0) // disarmed
	for n := 0; n < 100; n++ {
		if i.Fire(RingOverflow) {
			t.Fatal("disarmed kind fired")
		}
	}
	// A mid-range rate should land near its expectation over many trials.
	i.Arm(WorkerStall, RateMax/2)
	fired := 0
	const trials = 20000
	for n := 0; n < trials; n++ {
		if i.Fire(WorkerStall) {
			fired++
		}
	}
	frac := float64(fired) / trials
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("rate 1/2 fired fraction %.3f, want ~0.5", frac)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var i *Injector
	if i.Fire(DiameterDrop) {
		t.Fatal("nil injector fired")
	}
	if i.FireDelay(WorkerStall) != 0 {
		t.Fatal("nil injector returned a delay")
	}
	i.Arm(DiameterDrop, RateMax)
	i.ArmDelay(WorkerStall, RateMax, time.Millisecond)
	i.Disarm(DiameterDrop)
	i.DisarmAll()
	i.Apply(Plan{})
	if i.Seed() != 0 || i.Rate(SCTPLoss) != 0 || i.Fired(SCTPLoss) != 0 || i.Calls(SCTPLoss) != 0 {
		t.Fatal("nil injector accessors must return zero")
	}
}

func TestFireDelay(t *testing.T) {
	i := New(3)
	i.ArmDelay(DiameterDelay, RateMax, 5*time.Millisecond)
	if d := i.FireDelay(DiameterDelay); d != 5*time.Millisecond {
		t.Fatalf("FireDelay = %v, want 5ms", d)
	}
	if i.Delay(DiameterDelay) != 5*time.Millisecond {
		t.Fatal("Delay accessor mismatch")
	}
}

func TestEpochPlanDeterministic(t *testing.T) {
	p1 := EpochPlan(99, 4, RateMax/4, 2*time.Millisecond, DiameterDrop, SCTPLoss, WorkerStall)
	p2 := EpochPlan(99, 4, RateMax/4, 2*time.Millisecond, DiameterDrop, SCTPLoss, WorkerStall)
	if p1 != p2 {
		t.Fatal("EpochPlan is not deterministic")
	}
	p3 := EpochPlan(99, 5, RateMax/4, 2*time.Millisecond, DiameterDrop, SCTPLoss, WorkerStall)
	if p1 == p3 {
		t.Fatal("EpochPlan does not vary with epoch")
	}
	if p1.Rates[DiameterError] != 0 {
		t.Fatal("unlisted kind must stay disarmed")
	}
	if p1.Rates[DiameterDrop] > RateMax/4 {
		t.Fatalf("rate %d exceeds maxRate", p1.Rates[DiameterDrop])
	}
	// Kinds-specific: armed kinds in range.
	if p1.Delays[WorkerStall] > 2*time.Millisecond {
		t.Fatalf("delay %v exceeds maxDelay", p1.Delays[WorkerStall])
	}
}

func TestArmingOneKindDoesNotShiftAnother(t *testing.T) {
	a := New(11)
	b := New(11)
	a.Arm(DiameterError, RateMax/5)
	b.Arm(DiameterError, RateMax/5)
	// b additionally consumes disarmed decisions, which must not advance
	// any sequence.
	for n := 0; n < 500; n++ {
		_ = b.Fire(SliceCrash) // disarmed: no seq advance
		if a.Fire(DiameterError) != b.Fire(DiameterError) {
			t.Fatalf("error stream diverged at %d", n)
		}
	}
	if b.Calls(SliceCrash) != 0 {
		t.Fatal("disarmed Fire advanced the sequence")
	}
}
