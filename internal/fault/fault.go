// Package fault is PEPC's deterministic fault-injection subsystem: a
// seedable source of drop/delay/error decisions that the diameter proxy,
// the SCTP wires, the rings, the data workers and the slices consult at
// their failure points. Every decision is a pure function of (seed, kind,
// per-kind call sequence), so a failing chaos run replays bit-identically
// from its seed — the property that makes soak-test failures debuggable.
//
// The injector is nil-safe and allocation free on the decision path: a
// disarmed kind costs one atomic increment and one load, so production
// paths can keep the hooks wired permanently and tests arm them at will.
package fault

import (
	"errors"
	"sync/atomic"
	"time"
)

// Kind identifies one injectable failure mode.
type Kind uint8

// Failure modes.
const (
	// DiameterDrop loses a Diameter request: the backend never answers
	// and the caller's deadline must fire.
	DiameterDrop Kind = iota
	// DiameterDelay answers a Diameter request late by the armed delay.
	DiameterDelay
	// DiameterError makes the backend answer with a failure result code
	// (DIAMETER_UNABLE_TO_COMPLY) instead of processing the request.
	DiameterError
	// SCTPLoss drops an SCTP packet on the wire; persistent loss
	// exhausts the association's retransmission budget (path failure).
	SCTPLoss
	// RingOverflow makes a ring enqueue report full, exercising the
	// producers' backpressure paths (SigDrops, tail drops).
	RingOverflow
	// WorkerStall freezes a data worker for the armed delay between
	// batches, simulating a preempted or wedged data core.
	WorkerStall
	// SliceCrash marks a slice for crash-and-recover in the soak
	// harness: the slice is abandoned and rebuilt from checkpoint plus
	// its surviving update queue.
	SliceCrash

	// NumKinds is the number of failure modes.
	NumKinds = 7
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case DiameterDrop:
		return "diameter-drop"
	case DiameterDelay:
		return "diameter-delay"
	case DiameterError:
		return "diameter-error"
	case SCTPLoss:
		return "sctp-loss"
	case RingOverflow:
		return "ring-overflow"
	case WorkerStall:
		return "worker-stall"
	case SliceCrash:
		return "slice-crash"
	}
	return "unknown"
}

// ErrInjected is the error surfaced by injection points that fail a call
// outright (a dropped Diameter exchange with no deadline to absorb it).
var ErrInjected = errors.New("fault: injected failure")

// RateMax is the rate denominator: Arm with RateMax fires on every
// decision, RateMax/2 on half of them, and so on.
const RateMax = 1 << 16

// kindState is one failure mode's armed configuration and accounting.
// rate and delay are written by the (test/harness) controller and read
// on the decision path; seq orders decisions so they are deterministic
// per kind regardless of which thread asks.
type kindState struct {
	rate  atomic.Uint32 // 0 (disarmed) .. RateMax
	delay atomic.Int64  // nanoseconds, for the delay kinds
	seq   atomic.Uint64 // decision sequence number
	fired atomic.Uint64 // decisions that injected
}

// Injector is a deterministic fault source. The zero value and the nil
// pointer are both valid, permanently-disarmed injectors.
type Injector struct {
	seed  uint64
	kinds [NumKinds]kindState
}

// New returns an injector whose decision stream is fully determined by
// seed (and the per-kind order of Fire calls).
func New(seed uint64) *Injector {
	return &Injector{seed: seed}
}

// Seed returns the injector's seed.
func (i *Injector) Seed() uint64 {
	if i == nil {
		return 0
	}
	return i.seed
}

// Arm sets kind's firing probability to rate/RateMax (clamped). Rate 0
// disarms the kind.
func (i *Injector) Arm(k Kind, rate uint32) {
	if i == nil || int(k) >= NumKinds {
		return
	}
	if rate > RateMax {
		rate = RateMax
	}
	i.kinds[k].rate.Store(rate)
}

// ArmDelay arms kind with both a probability and a delay (the delay
// kinds: DiameterDelay, WorkerStall; DiameterDrop uses it as hold time).
func (i *Injector) ArmDelay(k Kind, rate uint32, d time.Duration) {
	if i == nil || int(k) >= NumKinds {
		return
	}
	i.kinds[k].delay.Store(int64(d))
	i.Arm(k, rate)
}

// Disarm stops kind from firing.
func (i *Injector) Disarm(k Kind) { i.Arm(k, 0) }

// DisarmAll stops every kind.
func (i *Injector) DisarmAll() {
	if i == nil {
		return
	}
	for k := 0; k < NumKinds; k++ {
		i.kinds[k].rate.Store(0)
	}
}

// Rate returns kind's armed probability numerator.
func (i *Injector) Rate(k Kind) uint32 {
	if i == nil || int(k) >= NumKinds {
		return 0
	}
	return i.kinds[k].rate.Load()
}

// Fire consumes one decision for kind and reports whether the fault
// should inject. Disarmed (or nil-injector) decisions never fire and do
// not advance the sequence, so arming mid-run does not shift the stream
// of a different kind.
func (i *Injector) Fire(k Kind) bool {
	if i == nil || int(k) >= NumKinds {
		return false
	}
	ks := &i.kinds[k]
	rate := ks.rate.Load()
	if rate == 0 {
		return false
	}
	seq := ks.seq.Add(1)
	h := Hash64(i.seed ^ Hash64(uint64(k)+1) ^ seq)
	if uint32(h&(RateMax-1)) >= rate {
		return false
	}
	ks.fired.Add(1)
	return true
}

// FireDelay is Fire returning the armed delay when the decision injects
// and 0 otherwise.
func (i *Injector) FireDelay(k Kind) time.Duration {
	if !i.Fire(k) {
		return 0
	}
	return time.Duration(i.kinds[k].delay.Load())
}

// Delay returns kind's armed delay.
func (i *Injector) Delay(k Kind) time.Duration {
	if i == nil || int(k) >= NumKinds {
		return 0
	}
	return time.Duration(i.kinds[k].delay.Load())
}

// Fired returns how many of kind's decisions injected.
func (i *Injector) Fired(k Kind) uint64 {
	if i == nil || int(k) >= NumKinds {
		return 0
	}
	return i.kinds[k].fired.Load()
}

// Calls returns how many decisions kind has consumed while armed.
func (i *Injector) Calls(k Kind) uint64 {
	if i == nil || int(k) >= NumKinds {
		return 0
	}
	return i.kinds[k].seq.Load()
}

// Hash64 is the splitmix64 finalizer: a cheap, well-mixed bijection used
// for decision hashing and for deterministic jitter in retry backoff.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Plan is a full per-kind configuration, applied atomically enough for
// chaos epochs (each kind's rate/delay pair is set individually; the
// harness quiesces between epochs).
type Plan struct {
	Rates  [NumKinds]uint32
	Delays [NumKinds]time.Duration
}

// Apply installs p.
func (i *Injector) Apply(p Plan) {
	if i == nil {
		return
	}
	for k := 0; k < NumKinds; k++ {
		i.kinds[k].delay.Store(int64(p.Delays[k]))
		i.Arm(Kind(k), p.Rates[k])
	}
}

// EpochPlan derives a deterministic pseudo-random plan for one chaos
// epoch: each kind in kinds gets a rate in [0, maxRate] and a delay in
// [0, maxDelay], both functions of (seed, epoch, kind) only. Kinds not
// listed stay disarmed.
func EpochPlan(seed uint64, epoch int, maxRate uint32, maxDelay time.Duration, kinds ...Kind) Plan {
	var p Plan
	if maxRate > RateMax {
		maxRate = RateMax
	}
	for _, k := range kinds {
		if int(k) >= NumKinds {
			continue
		}
		h := Hash64(seed ^ Hash64(uint64(epoch)<<8|uint64(k)))
		if maxRate > 0 {
			p.Rates[k] = uint32(h % uint64(maxRate+1))
		}
		if maxDelay > 0 {
			p.Delays[k] = time.Duration(Hash64(h) % uint64(maxDelay+1))
		}
	}
	return p
}
