package bpf

import (
	"errors"
	"fmt"

	"pepc/internal/pkt"
)

// FilterSpec describes a 5-tuple match over an inner IPv4 packet (the
// packet as seen after GTP-U decapsulation, starting at the IPv4 header).
// Zero-valued fields are wildcards. Addresses use CIDR-style prefix
// lengths; ports use inclusive ranges.
type FilterSpec struct {
	// SrcAddr/DstAddr with prefix lengths; a prefix length of 0 matches
	// any address.
	SrcAddr   uint32
	SrcPrefix uint8
	DstAddr   uint32
	DstPrefix uint8

	// Proto of 0 matches any protocol.
	Proto uint8

	// Port ranges; a range of [0,0] matches any port. Only meaningful for
	// TCP/UDP and automatically guards the protocol accordingly.
	SrcPortLo, SrcPortHi uint16
	DstPortLo, DstPortHi uint16

	// Ret is the accept value the program returns on match; zero is
	// replaced by 1 so matches are distinguishable from drops.
	Ret uint32
}

// Compile errors.
var (
	ErrBadPrefix    = errors.New("bpf: prefix length must be 0..32")
	ErrBadPortRange = errors.New("bpf: port range lo > hi")
)

// Offsets within an IPv4 packet.
const (
	offIPProto = 9
	offIPSrc   = 12
	offIPDst   = 16
	offIHL     = 0
)

// Compile translates a FilterSpec into a validated BPF program that
// classifies an IPv4 packet (starting at the IP header). The generated
// program checks, in order: IP version, protocol, source and destination
// prefixes, then loads the header length into X to locate the transport
// ports for the range checks.
func Compile(spec FilterSpec) (*Program, error) {
	if spec.SrcPrefix > 32 || spec.DstPrefix > 32 {
		return nil, ErrBadPrefix
	}
	if spec.SrcPortLo > spec.SrcPortHi || spec.DstPortLo > spec.DstPortHi {
		return nil, ErrBadPortRange
	}
	ret := spec.Ret
	if ret == 0 {
		ret = 1
	}
	b := &builder{}

	// Version must be 4.
	b.emit(Insn{Op: LdAbsB, K: offIHL})
	b.emit(Insn{Op: AndImm, K: 0xf0})
	b.jumpUnlessEq(0x40)

	needsPorts := spec.SrcPortLo != 0 || spec.SrcPortHi != 0 || spec.DstPortLo != 0 || spec.DstPortHi != 0
	if spec.Proto != 0 {
		b.emit(Insn{Op: LdAbsB, K: offIPProto})
		b.jumpUnlessEq(uint32(spec.Proto))
	} else if needsPorts {
		// Port matching only makes sense for TCP or UDP; accept either.
		b.emit(Insn{Op: LdAbsB, K: offIPProto})
		// if A == TCP skip the UDP check
		b.emitProtoEither()
	}
	if spec.SrcPrefix > 0 {
		mask := prefixMask(spec.SrcPrefix)
		b.emit(Insn{Op: LdAbsW, K: offIPSrc})
		b.emit(Insn{Op: AndImm, K: mask})
		b.jumpUnlessEq(spec.SrcAddr & mask)
	}
	if spec.DstPrefix > 0 {
		mask := prefixMask(spec.DstPrefix)
		b.emit(Insn{Op: LdAbsW, K: offIPDst})
		b.emit(Insn{Op: AndImm, K: mask})
		b.jumpUnlessEq(spec.DstAddr & mask)
	}
	if needsPorts {
		// X = IP header length, so ports live at X+0 (src) and X+2 (dst).
		b.emit(Insn{Op: LdxIPLen, K: offIHL})
		if spec.SrcPortLo != 0 || spec.SrcPortHi != 0 {
			b.emit(Insn{Op: IndH, K: 0})
			b.jumpUnlessInRange(uint32(spec.SrcPortLo), uint32(spec.SrcPortHi))
		}
		if spec.DstPortLo != 0 || spec.DstPortHi != 0 {
			b.emit(Insn{Op: IndH, K: 2})
			b.jumpUnlessInRange(uint32(spec.DstPortLo), uint32(spec.DstPortHi))
		}
	}
	b.emit(Insn{Op: RetImm, K: ret}) // match
	rejectPC := len(b.insns)
	b.emit(Insn{Op: RetImm, K: 0}) // reject
	b.patchRejects(rejectPC)
	return Assemble(b.insns)
}

// MustCompile is Compile that panics on error.
func MustCompile(spec FilterSpec) *Program {
	p, err := Compile(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// MatchFlow evaluates the spec directly against a parsed 5-tuple. The PEPC
// fast path uses this when the parse stage has already extracted the flow;
// the BPF program and MatchFlow must agree (tested by property test).
func (spec FilterSpec) MatchFlow(f pkt.Flow) bool {
	if spec.Proto != 0 && f.Proto != spec.Proto {
		return false
	}
	needsPorts := spec.SrcPortLo != 0 || spec.SrcPortHi != 0 || spec.DstPortLo != 0 || spec.DstPortHi != 0
	if needsPorts && f.Proto != pkt.ProtoTCP && f.Proto != pkt.ProtoUDP {
		return false
	}
	if spec.SrcPrefix > 0 {
		mask := prefixMask(spec.SrcPrefix)
		if f.Src&mask != spec.SrcAddr&mask {
			return false
		}
	}
	if spec.DstPrefix > 0 {
		mask := prefixMask(spec.DstPrefix)
		if f.Dst&mask != spec.DstAddr&mask {
			return false
		}
	}
	if spec.SrcPortLo != 0 || spec.SrcPortHi != 0 {
		if f.SrcPort < spec.SrcPortLo || f.SrcPort > spec.SrcPortHi {
			return false
		}
	}
	if spec.DstPortLo != 0 || spec.DstPortHi != 0 {
		if f.DstPort < spec.DstPortLo || f.DstPort > spec.DstPortHi {
			return false
		}
	}
	return true
}

// String renders the spec for diagnostics.
func (spec FilterSpec) String() string {
	return fmt.Sprintf("src=%s/%d dst=%s/%d proto=%d sport=%d-%d dport=%d-%d ret=%d",
		pkt.FormatIPv4(spec.SrcAddr), spec.SrcPrefix,
		pkt.FormatIPv4(spec.DstAddr), spec.DstPrefix,
		spec.Proto, spec.SrcPortLo, spec.SrcPortHi, spec.DstPortLo, spec.DstPortHi, spec.Ret)
}

func prefixMask(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

// builder accumulates instructions and defers reject-jump resolution: any
// conditional that fails must jump to the shared "return 0" at the end,
// whose address is unknown until the program is complete.
type builder struct {
	insns   []Insn
	rejects []int // pcs of jumps whose Jf must be patched to the reject RET
	either  []int // pcs of TCP-or-UDP checks (Jt patched past the UDP test)
}

func (b *builder) emit(in Insn) { b.insns = append(b.insns, in) }

// jumpUnlessEq emits "if A != k goto reject".
func (b *builder) jumpUnlessEq(k uint32) {
	b.rejects = append(b.rejects, len(b.insns))
	b.emit(Insn{Op: JEq, K: k, Jt: 0 /* fall through */, Jf: 0 /* patched */})
}

// jumpUnlessInRange emits "if A < lo || A > hi goto reject".
func (b *builder) jumpUnlessInRange(lo, hi uint32) {
	// if A >= lo fall through else reject
	b.rejects = append(b.rejects, len(b.insns))
	b.emit(Insn{Op: JGe, K: lo})
	// if A > hi reject else fall through
	b.rejects = append(b.rejects, len(b.insns))
	b.emit(Insn{Op: JGt, K: hi}) // Jt -> reject (patched as Jf? see patch)
}

// emitProtoEither emits "if A == TCP skip next; if A != UDP reject".
func (b *builder) emitProtoEither() {
	b.emit(Insn{Op: JEq, K: uint32(pkt.ProtoTCP), Jt: 1, Jf: 0})
	b.rejects = append(b.rejects, len(b.insns))
	b.emit(Insn{Op: JEq, K: uint32(pkt.ProtoUDP)})
}

// patchRejects points every deferred reject edge at rejectPC.
func (b *builder) patchRejects(rejectPC int) {
	for _, pc := range b.rejects {
		in := &b.insns[pc]
		off := rejectPC - pc - 1
		if off < 0 || off > 255 {
			panic("bpf: reject jump out of encodable range")
		}
		if in.Op == JGt {
			// "A > hi" being TRUE means out of range → reject.
			in.Jt = uint8(off)
		} else {
			in.Jf = uint8(off)
		}
	}
}
