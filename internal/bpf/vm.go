// Package bpf implements a classic-BPF-style virtual machine and a filter
// compiler over IPv4 5-tuples. The PEPC Policy and Charging Enforcement
// Function (PCEF) is "a match-action table, consisting of BPF programs over
// the 5-tuple and operator specified actions" (paper §4.2); this package
// provides those programs.
//
// The instruction set is a pragmatic subset of classic BPF: absolute loads
// of byte/half/word from packet memory, immediate and register ALU ops,
// conditional jumps, and RET with an accept value. Programs are validated
// before execution (forward-only jumps, in-range targets, guaranteed
// termination) exactly as a kernel verifier would insist.
package bpf

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Opcodes. The encoding follows classic BPF's class/mode split closely
// enough to read familiarly, but is its own ISA.
type Op uint8

const (
	// Loads into register A.
	LdAbsB Op = iota // A = pkt[k]
	LdAbsH           // A = be16(pkt[k:])
	LdAbsW           // A = be32(pkt[k:])
	LdImm            // A = k
	LdLen            // A = len(pkt)
	LdX              // A = X

	// Loads into register X.
	LdxImm   // X = k
	LdxA     // X = A
	LdxMemB  // X = pkt[k]
	LdxIPLen // X = 4*(pkt[k] & 0x0f)  (IPv4 header-length idiom)

	// ALU on A.
	AddImm // A += k
	SubImm // A -= k
	AndImm // A &= k
	OrImm  // A |= k
	RshImm // A >>= k
	LshImm // A <<= k
	AddX   // A += X
	IndB   // A = pkt[X+k]
	IndH   // A = be16(pkt[X+k:])
	IndW   // A = be32(pkt[X+k:])

	// Conditional jumps. jt/jf are relative forward offsets.
	JEq  // if A == k
	JGt  // if A > k
	JGe  // if A >= k
	JSet // if A & k != 0
	JEqX // if A == X

	// Return.
	RetImm // return k
	RetA   // return A
)

var opNames = map[Op]string{
	LdAbsB: "ldb", LdAbsH: "ldh", LdAbsW: "ldw", LdImm: "ld", LdLen: "ldlen", LdX: "tax",
	LdxImm: "ldx", LdxA: "txa", LdxMemB: "ldxb", LdxIPLen: "ldxhl",
	AddImm: "add", SubImm: "sub", AndImm: "and", OrImm: "or", RshImm: "rsh", LshImm: "lsh",
	AddX: "addx", IndB: "indb", IndH: "indh", IndW: "indw",
	JEq: "jeq", JGt: "jgt", JGe: "jge", JSet: "jset", JEqX: "jeqx",
	RetImm: "ret", RetA: "reta",
}

// Insn is one BPF instruction.
type Insn struct {
	Op Op
	Jt uint8  // jump offset if true (relative to next instruction)
	Jf uint8  // jump offset if false
	K  uint32 // immediate
}

// String renders the instruction in a bpf_asm-like syntax.
func (i Insn) String() string {
	name := opNames[i.Op]
	if name == "" {
		name = fmt.Sprintf("op%d", i.Op)
	}
	switch i.Op {
	case JEq, JGt, JGe, JSet, JEqX:
		return fmt.Sprintf("%-6s #%d jt %d jf %d", name, i.K, i.Jt, i.Jf)
	default:
		return fmt.Sprintf("%-6s #%d", name, i.K)
	}
}

// Validation errors.
var (
	ErrEmptyProgram = errors.New("bpf: empty program")
	ErrJumpRange    = errors.New("bpf: jump out of range")
	ErrNoReturn     = errors.New("bpf: program can fall off the end")
	ErrBadOp        = errors.New("bpf: unknown opcode")
	ErrTooLong      = errors.New("bpf: program too long")
)

// MaxInsns bounds program length, mirroring BPF_MAXINSNS.
const MaxInsns = 4096

// Program is a validated BPF program ready for execution.
type Program struct {
	insns []Insn
}

// Assemble validates insns and returns an executable Program. Validation
// guarantees termination: all jumps are forward and in range, and every
// path ends in a RET.
func Assemble(insns []Insn) (*Program, error) {
	if len(insns) == 0 {
		return nil, ErrEmptyProgram
	}
	if len(insns) > MaxInsns {
		return nil, ErrTooLong
	}
	for pc, in := range insns {
		if _, ok := opNames[in.Op]; !ok {
			return nil, fmt.Errorf("%w: pc %d", ErrBadOp, pc)
		}
		switch in.Op {
		case JEq, JGt, JGe, JSet, JEqX:
			if pc+1+int(in.Jt) >= len(insns) || pc+1+int(in.Jf) >= len(insns) {
				return nil, fmt.Errorf("%w: pc %d", ErrJumpRange, pc)
			}
		}
	}
	// Every instruction that can be the last executed must be a RET.
	last := insns[len(insns)-1]
	if last.Op != RetImm && last.Op != RetA {
		return nil, ErrNoReturn
	}
	p := &Program{insns: make([]Insn, len(insns))}
	copy(p.insns, insns)
	return p, nil
}

// MustAssemble is Assemble that panics on error, for compiled-in programs.
func MustAssemble(insns []Insn) *Program {
	p, err := Assemble(insns)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.insns) }

// Disassemble returns a printable listing of the program.
func (p *Program) Disassemble() []string {
	out := make([]string, len(p.insns))
	for i, in := range p.insns {
		out[i] = fmt.Sprintf("%3d: %s", i, in.String())
	}
	return out
}

// Run executes the program over pkt and returns its accept value. A return
// value of 0 means "drop/no match"; non-zero conventionally carries a rule
// id or snap length. Out-of-bounds packet loads terminate with 0, matching
// classic BPF semantics.
func (p *Program) Run(pkt []byte) uint32 {
	var a, x uint32
	insns := p.insns
	for pc := 0; pc < len(insns); pc++ {
		in := &insns[pc]
		k := in.K
		switch in.Op {
		case LdAbsB:
			if int(k) >= len(pkt) {
				return 0
			}
			a = uint32(pkt[k])
		case LdAbsH:
			if int(k)+2 > len(pkt) {
				return 0
			}
			a = uint32(binary.BigEndian.Uint16(pkt[k:]))
		case LdAbsW:
			if int(k)+4 > len(pkt) {
				return 0
			}
			a = binary.BigEndian.Uint32(pkt[k:])
		case LdImm:
			a = k
		case LdLen:
			a = uint32(len(pkt))
		case LdX:
			a = x
		case LdxImm:
			x = k
		case LdxA:
			x = a
		case LdxMemB:
			if int(k) >= len(pkt) {
				return 0
			}
			x = uint32(pkt[k])
		case LdxIPLen:
			if int(k) >= len(pkt) {
				return 0
			}
			x = 4 * uint32(pkt[k]&0x0f)
		case AddImm:
			a += k
		case SubImm:
			a -= k
		case AndImm:
			a &= k
		case OrImm:
			a |= k
		case RshImm:
			a >>= k & 31
		case LshImm:
			a <<= k & 31
		case AddX:
			a += x
		case IndB:
			off := int(x) + int(k)
			if off < 0 || off >= len(pkt) {
				return 0
			}
			a = uint32(pkt[off])
		case IndH:
			off := int(x) + int(k)
			if off < 0 || off+2 > len(pkt) {
				return 0
			}
			a = uint32(binary.BigEndian.Uint16(pkt[off:]))
		case IndW:
			off := int(x) + int(k)
			if off < 0 || off+4 > len(pkt) {
				return 0
			}
			a = binary.BigEndian.Uint32(pkt[off:])
		case JEq:
			pc += jump(a == k, in)
		case JGt:
			pc += jump(a > k, in)
		case JGe:
			pc += jump(a >= k, in)
		case JSet:
			pc += jump(a&k != 0, in)
		case JEqX:
			pc += jump(a == x, in)
		case RetImm:
			return k
		case RetA:
			return a
		}
	}
	// Unreachable for validated programs.
	return 0
}

func jump(cond bool, in *Insn) int {
	if cond {
		return int(in.Jt)
	}
	return int(in.Jf)
}
