package bpf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pepc/internal/pkt"
)

// buildIPv4 constructs an IPv4/transport packet for classifier tests.
func buildIPv4(f pkt.Flow, payload int) []byte {
	hl := pkt.TCPHeaderLen
	if f.Proto == pkt.ProtoUDP {
		hl = pkt.UDPHeaderLen
	}
	total := pkt.IPv4HeaderLen + hl + payload
	buf := make([]byte, total)
	ip := pkt.IPv4{Length: uint16(total), TTL: 64, Protocol: f.Proto, Src: f.Src, Dst: f.Dst}
	ip.SerializeTo(buf)
	switch f.Proto {
	case pkt.ProtoUDP:
		u := pkt.UDP{SrcPort: f.SrcPort, DstPort: f.DstPort, Length: uint16(hl + payload)}
		u.SerializeTo(buf[pkt.IPv4HeaderLen:])
	case pkt.ProtoTCP:
		tc := pkt.TCP{SrcPort: f.SrcPort, DstPort: f.DstPort}
		tc.SerializeTo(buf[pkt.IPv4HeaderLen:])
	}
	return buf
}

func TestAssembleRejectsInvalid(t *testing.T) {
	cases := []struct {
		name  string
		insns []Insn
		err   error
	}{
		{"empty", nil, ErrEmptyProgram},
		{"no return", []Insn{{Op: LdImm, K: 1}}, ErrNoReturn},
		{"jump past end", []Insn{{Op: JEq, K: 1, Jt: 5, Jf: 0}, {Op: RetImm}}, ErrJumpRange},
		{"bad op", []Insn{{Op: Op(200)}, {Op: RetImm}}, ErrBadOp},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.insns)
			if err == nil {
				t.Fatal("want error")
			}
			// error may be wrapped with pc info
			if tc.err != nil && !containsErr(err, tc.err) {
				t.Fatalf("got %v, want %v", err, tc.err)
			}
		})
	}
}

func containsErr(err, target error) bool {
	return err == target || (err != nil && target != nil && (errorIs(err, target)))
}

func errorIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestVMBasicOps(t *testing.T) {
	// Program: return be16(pkt[2:]) + 1
	p := MustAssemble([]Insn{
		{Op: LdAbsH, K: 2},
		{Op: AddImm, K: 1},
		{Op: RetA},
	})
	got := p.Run([]byte{0, 0, 0x12, 0x34})
	if got != 0x1235 {
		t.Fatalf("Run = %#x, want 0x1235", got)
	}
}

func TestVMOutOfBoundsLoadReturnsZero(t *testing.T) {
	p := MustAssemble([]Insn{
		{Op: LdAbsW, K: 100},
		{Op: RetImm, K: 7},
	})
	if got := p.Run([]byte{1, 2, 3}); got != 0 {
		t.Fatalf("oob load: Run = %d, want 0", got)
	}
}

func TestVMIndirectLoads(t *testing.T) {
	// X = 4*(pkt[0]&0x0f); A = be16(pkt[X+2:]) -> dst port of transport
	p := MustAssemble([]Insn{
		{Op: LdxIPLen, K: 0},
		{Op: IndH, K: 2},
		{Op: RetA},
	})
	f := pkt.Flow{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 53, Proto: pkt.ProtoUDP}
	data := buildIPv4(f, 0)
	if got := p.Run(data); got != 53 {
		t.Fatalf("dst port = %d, want 53", got)
	}
}

func TestVMConditionals(t *testing.T) {
	// if pkt[0] == 5 return 100 else return 200
	p := MustAssemble([]Insn{
		{Op: LdAbsB, K: 0},
		{Op: JEq, K: 5, Jt: 0, Jf: 1},
		{Op: RetImm, K: 100},
		{Op: RetImm, K: 200},
	})
	if got := p.Run([]byte{5}); got != 100 {
		t.Fatalf("match: %d", got)
	}
	if got := p.Run([]byte{6}); got != 200 {
		t.Fatalf("no match: %d", got)
	}
}

func TestCompileWildcardMatchesEverything(t *testing.T) {
	p := MustCompile(FilterSpec{Ret: 42})
	f := pkt.Flow{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: pkt.ProtoTCP}
	if got := p.Run(buildIPv4(f, 10)); got != 42 {
		t.Fatalf("wildcard: %d, want 42", got)
	}
}

func TestCompileRejectsNonIPv4(t *testing.T) {
	p := MustCompile(FilterSpec{Ret: 1})
	bad := make([]byte, 40)
	bad[0] = 0x60 // version 6
	if got := p.Run(bad); got != 0 {
		t.Fatalf("v6 packet matched: %d", got)
	}
}

func TestCompileProtoFilter(t *testing.T) {
	p := MustCompile(FilterSpec{Proto: pkt.ProtoUDP, Ret: 9})
	udp := pkt.Flow{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: pkt.ProtoUDP}
	tcp := udp
	tcp.Proto = pkt.ProtoTCP
	if got := p.Run(buildIPv4(udp, 0)); got != 9 {
		t.Fatalf("udp: %d", got)
	}
	if got := p.Run(buildIPv4(tcp, 0)); got != 0 {
		t.Fatalf("tcp should not match: %d", got)
	}
}

func TestCompilePrefixFilter(t *testing.T) {
	spec := FilterSpec{DstAddr: pkt.IPv4Addr(10, 1, 0, 0), DstPrefix: 16, Ret: 3}
	p := MustCompile(spec)
	in := pkt.Flow{Src: 1, Dst: pkt.IPv4Addr(10, 1, 200, 5), Proto: pkt.ProtoTCP, SrcPort: 1, DstPort: 2}
	out := in
	out.Dst = pkt.IPv4Addr(10, 2, 0, 5)
	if got := p.Run(buildIPv4(in, 0)); got != 3 {
		t.Fatalf("in-prefix: %d", got)
	}
	if got := p.Run(buildIPv4(out, 0)); got != 0 {
		t.Fatalf("out-of-prefix matched: %d", got)
	}
}

func TestCompilePortRange(t *testing.T) {
	spec := FilterSpec{DstPortLo: 80, DstPortHi: 90, Ret: 5}
	p := MustCompile(spec)
	for port, want := range map[uint16]uint32{79: 0, 80: 5, 85: 5, 90: 5, 91: 0} {
		f := pkt.Flow{Src: 1, Dst: 2, SrcPort: 1000, DstPort: port, Proto: pkt.ProtoTCP}
		if got := p.Run(buildIPv4(f, 0)); got != want {
			t.Fatalf("port %d: got %d want %d", port, got, want)
		}
	}
	// Port filters must not match non-TCP/UDP protocols.
	icmp := pkt.Flow{Src: 1, Dst: 2, Proto: pkt.ProtoICMP}
	data := buildIPv4(icmp, 4)
	if got := p.Run(data); got != 0 {
		t.Fatalf("icmp matched port filter: %d", got)
	}
}

func TestCompileBadSpecs(t *testing.T) {
	if _, err := Compile(FilterSpec{SrcPrefix: 33}); err != ErrBadPrefix {
		t.Fatalf("prefix: %v", err)
	}
	if _, err := Compile(FilterSpec{DstPortLo: 10, DstPortHi: 5}); err != ErrBadPortRange {
		t.Fatalf("range: %v", err)
	}
}

// Property: the compiled BPF program and the direct MatchFlow evaluation
// agree on every (spec, flow) pair. This is the contract that lets the
// PEPC fast path skip the VM once the flow is parsed.
func TestCompiledProgramAgreesWithMatchFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	protos := []uint8{pkt.ProtoTCP, pkt.ProtoUDP, pkt.ProtoICMP}
	for i := 0; i < 2000; i++ {
		spec := FilterSpec{
			SrcAddr:   rng.Uint32(),
			SrcPrefix: uint8(rng.Intn(33)),
			DstAddr:   rng.Uint32(),
			DstPrefix: uint8(rng.Intn(33)),
			Ret:       1,
		}
		if rng.Intn(2) == 0 {
			spec.Proto = protos[rng.Intn(len(protos))]
		}
		if rng.Intn(2) == 0 {
			lo := uint16(rng.Intn(1000)) + 1
			spec.DstPortLo, spec.DstPortHi = lo, lo+uint16(rng.Intn(100))
		}
		if rng.Intn(3) == 0 {
			lo := uint16(rng.Intn(1000)) + 1
			spec.SrcPortLo, spec.SrcPortHi = lo, lo+uint16(rng.Intn(100))
		}
		p, err := Compile(spec)
		if err != nil {
			t.Fatalf("compile %v: %v", spec, err)
		}
		f := pkt.Flow{
			Src:     rng.Uint32(),
			Dst:     rng.Uint32(),
			SrcPort: uint16(rng.Intn(1200)),
			DstPort: uint16(rng.Intn(1200)),
			Proto:   protos[rng.Intn(len(protos))],
		}
		// Bias half the flows toward matching the spec's prefixes.
		if rng.Intn(2) == 0 {
			f.Src = spec.SrcAddr
			f.Dst = spec.DstAddr
			if spec.Proto != 0 {
				f.Proto = spec.Proto
			}
			if spec.DstPortLo != 0 {
				f.DstPort = spec.DstPortLo
			}
			if spec.SrcPortLo != 0 {
				f.SrcPort = spec.SrcPortLo
			}
		}
		data := buildIPv4(f, 8)
		vm := p.Run(data) != 0
		direct := spec.MatchFlow(f)
		if vm != direct {
			t.Fatalf("disagreement on spec{%v} flow{%v}: vm=%v direct=%v\n%v",
				spec, f, vm, direct, p.Disassemble())
		}
	}
}

// Property: validated programs always terminate (implicitly tested by the
// fuzz above) and Run never panics on arbitrary packet bytes.
func TestRunNeverPanics(t *testing.T) {
	p := MustCompile(FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: 1, DstPortHi: 100, Ret: 1})
	f := func(data []byte) bool {
		_ = p.Run(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleStable(t *testing.T) {
	p := MustCompile(FilterSpec{Proto: pkt.ProtoUDP, Ret: 2})
	lines := p.Disassemble()
	if len(lines) != p.Len() {
		t.Fatalf("disassembly has %d lines for %d insns", len(lines), p.Len())
	}
}

func BenchmarkVMClassify(b *testing.B) {
	p := MustCompile(FilterSpec{
		Proto:     pkt.ProtoTCP,
		DstAddr:   pkt.IPv4Addr(10, 0, 0, 0),
		DstPrefix: 8,
		DstPortLo: 80, DstPortHi: 80,
		Ret: 1,
	})
	f := pkt.Flow{Src: pkt.IPv4Addr(192, 168, 0, 1), Dst: pkt.IPv4Addr(10, 1, 2, 3), SrcPort: 40000, DstPort: 80, Proto: pkt.ProtoTCP}
	data := buildIPv4(f, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.Run(data) == 0 {
			b.Fatal("no match")
		}
	}
}

func BenchmarkMatchFlow(b *testing.B) {
	spec := FilterSpec{Proto: pkt.ProtoTCP, DstAddr: pkt.IPv4Addr(10, 0, 0, 0), DstPrefix: 8, DstPortLo: 80, DstPortHi: 80, Ret: 1}
	f := pkt.Flow{Src: pkt.IPv4Addr(192, 168, 0, 1), Dst: pkt.IPv4Addr(10, 1, 2, 3), SrcPort: 40000, DstPort: 80, Proto: pkt.ProtoTCP}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !spec.MatchFlow(f) {
			b.Fatal("no match")
		}
	}
}
