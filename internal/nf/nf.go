// Package nf is the run-to-completion execution framework PEPC's threads
// run on — the NetBricks substitute. A Worker owns an input ring (its
// "NIC queue"), dequeues packets in batches, runs its handler to
// completion on each batch, and performs housekeeping (update-queue
// drains, timer work) between batches — never mid-packet, matching the
// paper's no-preemption model (§3.1 footnote 4).
package nf

import (
	"runtime"
	"sync/atomic"
	"time"

	"pepc/internal/fault"
	"pepc/internal/pkt"
	"pepc/internal/ring"
)

// DefaultBatchSize is the per-poll packet budget, the paper's update
// batching granularity (32).
const DefaultBatchSize = 32

// Port is a pair of rings standing in for a NIC queue or a vport between
// pipeline stages: packets flow in on RX and out on TX.
type Port struct {
	RX *ring.SPSC[*pkt.Buf]
	TX *ring.SPSC[*pkt.Buf]
}

// NewPort returns a port with rings of the given capacity (power of two).
func NewPort(capacity int) (*Port, error) {
	rx, err := ring.NewSPSC[*pkt.Buf](capacity)
	if err != nil {
		return nil, err
	}
	tx, err := ring.NewSPSC[*pkt.Buf](capacity)
	if err != nil {
		return nil, err
	}
	return &Port{RX: rx, TX: tx}, nil
}

// MustPort is NewPort that panics on error.
func MustPort(capacity int) *Port {
	p, err := NewPort(capacity)
	if err != nil {
		panic(err)
	}
	return p
}

// Peer returns the port as seen from the other side: its RX is this TX.
func (p *Port) Peer() *Port { return &Port{RX: p.TX, TX: p.RX} }

// Stats counts worker activity. Fields are updated by the worker and may
// be read concurrently through atomic loads via the Stats method.
type Stats struct {
	Packets   atomic.Uint64
	Batches   atomic.Uint64
	IdlePolls atomic.Uint64
	Drops     atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Packets   uint64
	Batches   uint64
	IdlePolls uint64
	Drops     uint64
}

// Source is anything a worker can poll packets from: the SPSC ring of a
// dedicated queue or the MPSC ring of a queue with several producers
// (demux thread, migration drain, paging resume).
type Source interface {
	DequeueBatch(vs []*pkt.Buf) int
}

// Worker is one run-to-completion loop pinned (logically) to a core. The
// handler processes each dequeued batch fully; Housekeep runs between
// batches every HousekeepEvery processed packets.
type Worker struct {
	// In is the queue the worker polls.
	In Source
	// Handler processes a batch in place. Packets the handler wants to
	// forward it must enqueue/free itself; the worker only dequeues.
	Handler func(batch []*pkt.Buf)
	// In2/Handler2 optionally attach a second queue to the same loop
	// (e.g. the downlink direction next to In's uplink): every iteration
	// polls In then In2, so both directions run to completion on one
	// thread — the paper's single-data-core slice — instead of two
	// goroutines racing each other over single-consumer state.
	In2      Source
	Handler2 func(batch []*pkt.Buf)
	// Housekeep runs between batches (e.g. draining the control→data
	// update queue). Nil disables.
	Housekeep func()
	// HousekeepEvery is the packet interval between Housekeep calls
	// (default DefaultBatchSize, the paper's 32-packet sync).
	HousekeepEvery int
	// BatchSize is the per-poll dequeue budget (default DefaultBatchSize).
	BatchSize int
	// Cache optionally attaches the worker's level of the two-level
	// buffer pool (the handlers' free path). The worker flushes it when
	// the loop exits so cached buffers return to the shared pool.
	Cache *pkt.PoolCache
	// Faults optionally injects data-worker stalls: between iterations
	// the loop consults fault.WorkerStall and sleeps the armed delay when
	// it fires — a preempted or wedged data core. Nil disables.
	Faults *fault.Injector
	// IdlePark, when positive, makes a persistently idle worker sleep
	// that long instead of pure busy-polling with Gosched. Daemon-mode
	// workers (socket egress, co-scheduled slices on small hosts) set it
	// to trade bounded wakeup latency for not burning a core while the
	// wire is quiet; benchmark workers leave it 0 to keep the
	// run-to-completion loop hot.
	IdlePark time.Duration

	// Stalls counts injected worker stalls.
	Stalls atomic.Uint64

	stats Stats
}

// maybeStall consults the injector between batches; run-to-completion
// means a stall never lands mid-packet, matching the paper's
// no-preemption model even under fault injection.
func (w *Worker) maybeStall() {
	if w.Faults == nil {
		return
	}
	if d := w.Faults.FireDelay(fault.WorkerStall); d > 0 {
		w.Stalls.Add(1)
		time.Sleep(d)
	}
}

// Stats returns a snapshot of the worker counters.
func (w *Worker) Stats() StatsSnapshot {
	return StatsSnapshot{
		Packets:   w.stats.Packets.Load(),
		Batches:   w.stats.Batches.Load(),
		IdlePolls: w.stats.IdlePolls.Load(),
		Drops:     w.stats.Drops.Load(),
	}
}

// Run polls until stop is closed. It yields the processor on idle polls
// so co-scheduled workers (test environments with fewer physical cores
// than workers) make progress.
func (w *Worker) Run(stop <-chan struct{}) {
	if w.Cache != nil {
		defer w.Cache.Flush()
	}
	batchSize := w.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	hkEvery := w.HousekeepEvery
	if hkEvery <= 0 {
		hkEvery = DefaultBatchSize
	}
	batch := make([]*pkt.Buf, batchSize)
	sinceHK := 0
	idle := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		w.maybeStall()
		n := w.In.DequeueBatch(batch)
		if n > 0 {
			w.Handler(batch[:n])
			w.stats.Packets.Add(uint64(n))
			w.stats.Batches.Add(1)
			sinceHK += n
		}
		if w.In2 != nil {
			if n2 := w.In2.DequeueBatch(batch); n2 > 0 {
				w.Handler2(batch[:n2])
				w.stats.Packets.Add(uint64(n2))
				w.stats.Batches.Add(1)
				sinceHK += n2
				n += n2
			}
		}
		if n == 0 {
			w.stats.IdlePolls.Add(1)
			if w.Housekeep != nil {
				w.Housekeep()
				sinceHK = 0
			}
			idle++
			if idle > 64 {
				if w.IdlePark > 0 {
					time.Sleep(w.IdlePark)
				} else {
					runtime.Gosched()
				}
				idle = 0
			}
			continue
		}
		idle = 0
		if w.Housekeep != nil && sinceHK >= hkEvery {
			w.Housekeep()
			sinceHK = 0
		}
	}
}

// RunN processes at most total packets, then returns — the measured-work
// variant benchmarks use so a run has a defined end without wall-clock
// coupling. Housekeeping behaves as in Run.
func (w *Worker) RunN(total int) {
	if w.Cache != nil {
		defer w.Cache.Flush()
	}
	batchSize := w.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	hkEvery := w.HousekeepEvery
	if hkEvery <= 0 {
		hkEvery = DefaultBatchSize
	}
	batch := make([]*pkt.Buf, batchSize)
	sinceHK := 0
	done := 0
	for done < total {
		w.maybeStall()
		budget := batchSize
		if rem := total - done; rem < budget {
			budget = rem
		}
		n := w.In.DequeueBatch(batch[:budget])
		if n > 0 {
			w.Handler(batch[:n])
			w.stats.Packets.Add(uint64(n))
			w.stats.Batches.Add(1)
			done += n
			sinceHK += n
		}
		if w.In2 != nil && done < total {
			budget = batchSize
			if rem := total - done; rem < budget {
				budget = rem
			}
			if n2 := w.In2.DequeueBatch(batch[:budget]); n2 > 0 {
				w.Handler2(batch[:n2])
				w.stats.Packets.Add(uint64(n2))
				w.stats.Batches.Add(1)
				done += n2
				sinceHK += n2
				n += n2
			}
		}
		if n == 0 {
			if w.Housekeep != nil {
				w.Housekeep()
				sinceHK = 0
			}
			runtime.Gosched()
			continue
		}
		if w.Housekeep != nil && sinceHK >= hkEvery {
			w.Housekeep()
			sinceHK = 0
		}
	}
}
