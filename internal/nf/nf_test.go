package nf

import (
	"sync"
	"testing"
	"time"

	"pepc/internal/fault"
	"pepc/internal/pkt"
	"pepc/internal/ring"
)

func TestWorkerProcessesAllPackets(t *testing.T) {
	port := MustPort(1024)
	pool := pkt.NewPool(256, 32)
	const total = 5000
	var got int
	w := &Worker{
		In: port.RX,
		Handler: func(batch []*pkt.Buf) {
			for _, b := range batch {
				got++
				b.Free()
			}
		},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.RunN(total)
	}()
	for i := 0; i < total; {
		b := pool.Get()
		b.SetBytes([]byte{byte(i)})
		if port.RX.Enqueue(b) {
			i++
		}
	}
	wg.Wait()
	if got != total {
		t.Fatalf("processed %d, want %d", got, total)
	}
	st := w.Stats()
	if st.Packets != total || st.Batches == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWorkerHousekeepCadence(t *testing.T) {
	port := MustPort(1024)
	pool := pkt.NewPool(256, 32)
	hk := 0
	w := &Worker{
		In:             port.RX,
		BatchSize:      8,
		HousekeepEvery: 32,
		Handler: func(batch []*pkt.Buf) {
			for _, b := range batch {
				b.Free()
			}
		},
		Housekeep: func() { hk++ },
	}
	const total = 320
	for i := 0; i < total; i++ {
		port.RX.Enqueue(pool.Get())
	}
	w.RunN(total)
	// 320 packets at one housekeep per 32 → at least 10 (idle polls add
	// more).
	if hk < 10 {
		t.Fatalf("housekeep ran %d times, want >= 10", hk)
	}
}

func TestWorkerRunStops(t *testing.T) {
	port := MustPort(64)
	w := &Worker{In: port.RX, Handler: func(batch []*pkt.Buf) {}}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		w.Run(stop)
		close(done)
	}()
	close(stop)
	<-done
}

func TestPortPeer(t *testing.T) {
	p := MustPort(64)
	peer := p.Peer()
	if peer.RX != p.TX || peer.TX != p.RX {
		t.Fatal("peer does not mirror rings")
	}
}

func TestNewPortRejectsBadCapacity(t *testing.T) {
	if _, err := NewPort(3); err == nil {
		t.Fatal("bad capacity accepted")
	}
}

// An armed WorkerStall must freeze the loop between batches (counted in
// Stalls) without losing packets.
func TestWorkerStallInjection(t *testing.T) {
	in := ring.MustSPSC[*pkt.Buf](64)
	inj := fault.New(1)
	inj.ArmDelay(fault.WorkerStall, fault.RateMax, 100*time.Microsecond)
	var got int
	w := &Worker{
		In:      in,
		Faults:  inj,
		Handler: func(batch []*pkt.Buf) { got += len(batch) },
	}
	const total = 16
	for i := 0; i < total; i++ {
		in.Enqueue(pkt.NewBuf(64, 0))
	}
	w.RunN(total)
	if got != total {
		t.Fatalf("processed %d packets, want %d", got, total)
	}
	if w.Stalls.Load() == 0 {
		t.Fatal("no stalls injected despite RateMax arm")
	}
}
