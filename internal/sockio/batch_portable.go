package sockio

// Portable one-datagram batch logic, extracted from the fallback build
// (batch_fallback.go) into a tag-free file so the non-vectorized path
// compiles — and is tested — on every platform, including the Linux CI
// hosts that otherwise only exercise recvmmsg/sendmmsg. The fallback
// build's readBatch/writeBatch delegate here; the contract matches the
// OS implementations: these count kernel crossings (RxCalls/TxCalls),
// the ReadBatch/WriteBatch wrappers count the packet tallies.

// fallbackReadBatch reads one datagram per kernel crossing into ms[0].
func (c *Conn) fallbackReadBatch(ms []Message) (int, error) {
	n, ap, err := c.uc.ReadFromUDPAddrPort(ms[0].Buf)
	c.stats.RxCalls.Add(1)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = ap
	return 1, nil
}

// fallbackWriteBatch sends each message with its own kernel crossing,
// stopping at the first error with the count already sent.
func (c *Conn) fallbackWriteBatch(ms []Message) (int, error) {
	for i := range ms {
		var err error
		if ms[i].Addr.IsValid() {
			_, err = c.uc.WriteToUDPAddrPort(ms[i].Buf[:ms[i].N], ms[i].Addr)
		} else {
			_, err = c.uc.Write(ms[i].Buf[:ms[i].N])
		}
		c.stats.TxCalls.Add(1)
		if err != nil {
			return i, err
		}
	}
	return len(ms), nil
}
