package sockio

import (
	"fmt"
	"testing"
	"time"
)

// TestFallbackBatchIO exercises the portable one-datagram substrate
// (batch_portable.go) directly — no build tags, so it runs on the Linux
// CI hosts whose Conn otherwise always takes the vectorized path. It
// pins the fallback's whole contract: payload/address fidelity in both
// the connected-send and explicit-address cases, one datagram per call,
// and one kernel crossing counted per datagram (syscalls/packet == 1,
// the number the Stats exist to expose).
func TestFallbackBatchIO(t *testing.T) {
	rx, tx := pairConns(t)

	const n = 8
	ms := make([]Message, n)
	for i := range ms {
		p := []byte(fmt.Sprintf("fallback-datagram-%d", i))
		ms[i].Buf = p
		ms[i].N = len(p)
	}
	tx0 := tx.Stats()
	sent, err := tx.fallbackWriteBatch(ms)
	if err != nil || sent != n {
		t.Fatalf("fallbackWriteBatch: sent %d err %v", sent, err)
	}
	if d := tx.Stats().TxCalls - tx0.TxCalls; d != n {
		t.Fatalf("fallback write made %d kernel crossings for %d datagrams, want %d", d, n, n)
	}

	rx0 := rx.Stats()
	rx.UDPConn().SetReadDeadline(time.Now().Add(5 * time.Second))
	rms := make([]Message, 4) // larger than 1: the fallback must still fill only ms[0]
	for i := range rms {
		rms[i].Buf = make([]byte, 2048)
	}
	for i := 0; i < n; i++ {
		got, err := rx.fallbackReadBatch(rms)
		if err != nil {
			t.Fatalf("fallbackReadBatch %d: %v", i, err)
		}
		if got != 1 {
			t.Fatalf("fallback read returned %d datagrams in one call, want 1", got)
		}
		want := fmt.Sprintf("fallback-datagram-%d", i)
		if string(rms[0].Buf[:rms[0].N]) != want {
			t.Fatalf("datagram %d: got %q want %q", i, rms[0].Buf[:rms[0].N], want)
		}
		if rms[0].Addr != tx.LocalAddrPort() {
			t.Fatalf("datagram %d: source %v, want %v", i, rms[0].Addr, tx.LocalAddrPort())
		}
	}
	if d := rx.Stats().RxCalls - rx0.RxCalls; d != n {
		t.Fatalf("fallback read made %d kernel crossings for %d datagrams, want %d", d, n, n)
	}

	// The explicit-address send arm: the unconnected (bound) socket
	// routes each datagram by its Message.Addr — the Sender-side shape
	// egress uses when replying toward learned peers.
	back := Message{Buf: []byte("fallback-reply"), N: 14, Addr: tx.LocalAddrPort()}
	if sent, err := rx.fallbackWriteBatch([]Message{back}); err != nil || sent != 1 {
		t.Fatalf("explicit-addr fallback write: sent %d err %v", sent, err)
	}
	tx.UDPConn().SetReadDeadline(time.Now().Add(5 * time.Second))
	if got, err := tx.fallbackReadBatch(rms); err != nil || got != 1 {
		t.Fatalf("reply read: got %d err %v", got, err)
	} else if string(rms[0].Buf[:rms[0].N]) != "fallback-reply" {
		t.Fatalf("reply payload %q", rms[0].Buf[:rms[0].N])
	}

	// Error path: a closed socket fails the batch with the partial count
	// and still tallies the attempted crossing, so accounting can't
	// drift on shutdown.
	tx1 := tx.Stats()
	tx.Close()
	if sent, err := tx.fallbackWriteBatch(ms[:2]); err == nil || sent != 0 {
		t.Fatalf("write on closed socket: sent %d err %v", sent, err)
	}
	if d := tx.Stats().TxCalls - tx1.TxCalls; d != 1 {
		t.Fatalf("closed-socket write counted %d crossings, want 1", d)
	}
	rx.UDPConn().SetReadDeadline(time.Now()) // expired: the read must error, not block
	if got, err := rx.fallbackReadBatch(rms); err == nil || got != 0 {
		t.Fatalf("read past the deadline: got %d err %v", got, err)
	}
}
