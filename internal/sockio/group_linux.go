//go:build linux && (amd64 || arm64)

package sockio

import (
	"context"
	"net"
	"syscall"
	"unsafe"
)

// Socket options not exported by the syscall package on linux.
const (
	soReusePort           = 0x0f // SO_REUSEPORT
	soAttachReusePortCBPF = 0x33 // SO_ATTACH_REUSEPORT_CBPF
)

// Classic-BPF opcodes used by the steering program.
const (
	bpfLdBAbs  = 0x30 // ldb [k]   A = payload byte at k
	bpfLdHAbs  = 0x28 // ldh [k]   A = payload big-endian half-word at k
	bpfLdWAbs  = 0x20 // ld  [k]   A = payload big-endian word at k
	bpfAluModK = 0x94 // mod #k
	bpfJmpJeqK = 0x15 // jeq #k, jt, jf
	bpfJmpJA   = 0x05 // ja +k
	bpfRetA    = 0x16 // ret A
)

// sockFilter mirrors struct sock_filter.
type sockFilter struct {
	code uint16
	jt   uint8
	jf   uint8
	k    uint32
}

// sockFprog mirrors struct sock_fprog on 64-bit: the instruction count
// padded out to the pointer alignment of the filter pointer.
type sockFprog struct {
	len    uint16
	_      [6]byte
	filter *sockFilter
}

// flowSteerProg builds the queue-selection program for an n-queue group.
// For reuseport on UDP the kernel runs the filter over the UDP payload,
// and the program's return value is the queue index (a too-short load
// terminates the program returning 0, i.e. queue 0; a value >= n falls
// back to the kernel hash). The program keys on the flow, not the packet.
// PEPC's wire datagrams carry a full outer envelope, so the payload is
// itself an IPv4 packet:
//
//	GTP-U envelope (IPv4/IHL-5 carrying UDP to port 2152):
//	    queue = outer TEID mod n        (TEID at 20 + 8 + 4 = offset 32)
//	plain IPv4 (anything else — downlink from the SGi):
//	    queue = IPv4 dst mod n
//
// so every packet of one tunnel (and every downlink packet of one UE)
// lands on the same queue regardless of the sender's source port — the
// affinity the per-queue WireSteer and PoolCache rely on.
func flowSteerProg(n int) []sockFilter {
	k := uint32(n)
	return []sockFilter{
		{code: bpfLdBAbs, k: 0},                     // A = version|IHL
		{code: bpfJmpJeqK, jt: 0, jf: 4, k: 0x45},   // option-free IPv4? : dst branch
		{code: bpfLdBAbs, k: 9},                     // A = protocol
		{code: bpfJmpJeqK, jt: 0, jf: 2, k: 17},     // UDP? : dst branch
		{code: bpfLdHAbs, k: 22},                    // A = outer UDP dst port
		{code: bpfJmpJeqK, jt: 2, jf: 0, k: 2152},   // GTP-U? TEID branch : dst branch
		{code: bpfLdWAbs, k: 16},                    // A = IPv4 dst addr
		{code: bpfJmpJA, k: 1},                      // skip TEID load
		{code: bpfLdWAbs, k: 32},                    // A = outer TEID
		{code: bpfAluModK, k: k},
		{code: bpfRetA},
	}
}

// reusePortControl marks the socket as a reuseport-group member before
// bind, so all queues may share one local address.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}

// attachReusePortProg attaches the steering program to the reuseport
// group through one member socket (the kernel applies it group-wide).
func attachReusePortProg(c *Conn, prog []sockFilter) error {
	fp := sockFprog{len: uint16(len(prog)), filter: &prog[0]}
	var serr syscall.Errno
	err := c.rc.Control(func(fd uintptr) {
		_, _, serr = syscall.Syscall6(syscall.SYS_SETSOCKOPT, fd,
			uintptr(syscall.SOL_SOCKET), soAttachReusePortCBPF,
			uintptr(unsafe.Pointer(&fp)), unsafe.Sizeof(fp), 0)
	})
	if err != nil {
		return err
	}
	if serr != 0 {
		return serr
	}
	return nil
}

// listenGroupOS opens n reuseport sockets on addr and attaches the flow
// steering program. The attach is best-effort: a kernel that refuses it
// leaves the group balancing by 4-tuple hash (steered=false).
func listenGroupOS(network, addr string, n int) ([]*Conn, bool, error) {
	lc := net.ListenConfig{Control: reusePortControl}
	conns := make([]*Conn, 0, n)
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), network, addr)
		if err != nil {
			closeAll()
			return nil, false, err
		}
		c, err := NewConn(pc.(*net.UDPConn))
		if err != nil {
			pc.Close()
			closeAll()
			return nil, false, err
		}
		if i == 0 {
			// addr may carry port 0: the rest of the group joins the
			// port the first bind picked.
			addr = pc.LocalAddr().String()
		}
		conns = append(conns, c)
	}
	steered := attachReusePortProg(conns[0], flowSteerProg(n)) == nil
	return conns, steered, nil
}
