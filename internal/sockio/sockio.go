// Package sockio is the vectorized UDP I/O layer between the kernel and
// PEPC's batch machinery: it reads and writes many datagrams per syscall
// boundary (recvmmsg/sendmmsg on Linux, a portable one-at-a-time fallback
// elsewhere) and lands receive bursts directly in pool-backed pkt.Bufs
// with their encap headroom preserved, so the wire path feeds the same
// zero-copy staged pipeline the in-memory substrate runs on.
//
// The layer has two levels. Conn wraps a *net.UDPConn with ReadBatch and
// WriteBatch over a caller-owned []Message — the raw vectorized syscall
// surface, allocation free in the steady state. Receiver and Sender sit
// on top and own the pkt.PoolCache glue: a Receiver scatters each rx
// burst into fresh pool buffers (headroom intact) and a Sender coalesces
// egress buffers into gathered bursts, flushed when a batch fills or a
// small linger budget expires. PeerTable remembers which UDP endpoint
// each outer tunnel source address arrived from, so downlink egress can
// be routed back to the eNodeB's socket without configuration.
package sockio

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
)

// DefaultBatch is the default rx/tx burst size in datagrams — large
// enough to amortize a syscall across a worker batch (nf.DefaultBatchSize
// packets), small enough to keep the linger budget's latency contribution
// trivial.
const DefaultBatch = 32

// Message describes one datagram of a batch: the payload region and the
// peer address. On receive, Buf is the scatter target (typically a
// pkt.Buf's RecvSlice), N is set to the datagram length and Addr to the
// source. On send, Buf[:N] is the datagram and Addr the destination; a
// zero Addr sends on the connected socket's peer.
type Message struct {
	Buf  []byte
	N    int
	Addr netip.AddrPort
}

// Stats counts the conn's syscall boundary: calls are actual kernel
// crossings, packets the datagrams they moved. syscalls/packet =
// Calls/Packets is the number the batching exists to shrink.
type Stats struct {
	RxCalls   atomic.Uint64
	RxPackets atomic.Uint64
	TxCalls   atomic.Uint64
	TxPackets atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	RxCalls   uint64
	RxPackets uint64
	TxCalls   uint64
	TxPackets uint64
}

// Conn is a UDP socket with vectorized batch I/O. At most one goroutine
// may call ReadBatch and one WriteBatch concurrently (the rx loop / tx
// worker split); WriteBatch itself is internally serialized so several
// egress workers may share one socket.
type Conn struct {
	uc *net.UDPConn
	rc syscall.RawConn

	stats Stats

	rx rxState
	// txMu serializes WriteBatch callers: replies must leave from the
	// bound GTP-U port, so every slice's egress worker shares this conn.
	txMu sync.Mutex
	tx   txState
}

// NewConn wraps uc for batch I/O. The socket stays usable through uc
// (deadlines, close).
func NewConn(uc *net.UDPConn) (*Conn, error) {
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil, err
	}
	c := &Conn{uc: uc, rc: rc}
	c.initOS()
	return c, nil
}

// UDPConn returns the wrapped socket (for deadlines and addresses).
func (c *Conn) UDPConn() *net.UDPConn { return c.uc }

// LocalAddrPort returns the socket's bound address.
func (c *Conn) LocalAddrPort() netip.AddrPort {
	a, _ := c.uc.LocalAddr().(*net.UDPAddr)
	if a == nil {
		return netip.AddrPort{}
	}
	return a.AddrPort()
}

// Stats returns a snapshot of the syscall counters.
func (c *Conn) Stats() StatsSnapshot {
	return StatsSnapshot{
		RxCalls:   c.stats.RxCalls.Load(),
		RxPackets: c.stats.RxPackets.Load(),
		TxCalls:   c.stats.TxCalls.Load(),
		TxPackets: c.stats.TxPackets.Load(),
	}
}

// Close closes the underlying socket, unblocking pending batch calls.
func (c *Conn) Close() error { return c.uc.Close() }

// ReadBatch blocks until at least one datagram is available (or the
// socket's read deadline expires / the socket closes), then fills ms with
// as many datagrams as one kernel crossing yields, up to len(ms). It
// returns the count; ms[i].N and ms[i].Addr describe each datagram.
// Allocation free in the steady state.
func (c *Conn) ReadBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, err := c.readBatch(ms)
	if n > 0 {
		// readBatch counts its own kernel crossings (including EAGAIN
		// probes); only the packet tally lives here.
		c.stats.RxPackets.Add(uint64(n))
	}
	return n, err
}

// WriteBatch sends every message in ms, looping on partial progress, and
// returns the count sent. Allocation free in the steady state.
func (c *Conn) WriteBatch(ms []Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	c.txMu.Lock()
	n, err := c.writeBatch(ms)
	c.txMu.Unlock()
	if n > 0 {
		// writeBatch counts its own kernel crossings (including
		// partial-resend loops); only the packet tally lives here.
		c.stats.TxPackets.Add(uint64(n))
	}
	return n, err
}

// ErrClosed is returned once batch I/O observes the socket closed.
var ErrClosed = errors.New("sockio: connection closed")

// PeerTable maps outer tunnel source addresses (the eNodeB's S1-U IPv4,
// host order) to the UDP endpoint the tunnel's packets arrive from, so
// downlink egress — whose outer destination is that same S1-U address —
// can be transmitted back over the wire without static routing. The rx
// loops learn, egress workers look up.
//
// It is one of the two cross-queue structures of the multi-queue data
// plane (Conn stats being the other) and is kept read-mostly: Lookup runs
// once per egress packet on every queue, while Learn only mutates on the
// first packet from a new eNodeB (or an eNodeB restart). The table is
// therefore copy-on-write — readers follow an atomic pointer to an
// immutable map (wait-free, no shared cache line bounced between queues)
// and the rare writer clones the map under a writer-only mutex.
type PeerTable struct {
	// mu serializes writers only; readers never take it.
	mu sync.Mutex
	p  atomic.Pointer[map[uint32]netip.AddrPort]
}

// NewPeerTable returns an empty table.
func NewPeerTable() *PeerTable {
	t := &PeerTable{}
	m := make(map[uint32]netip.AddrPort)
	t.p.Store(&m)
	return t
}

// Learn records ip → from. The common case (mapping already present and
// unchanged) is a wait-free read; a new or moved peer clones the map.
func (t *PeerTable) Learn(ip uint32, from netip.AddrPort) {
	if cur, ok := (*t.p.Load())[ip]; ok && cur == from {
		return
	}
	t.mu.Lock()
	// Re-check under the writer lock: a racing Learn may have already
	// published this exact mapping.
	old := *t.p.Load()
	if cur, ok := old[ip]; !ok || cur != from {
		next := make(map[uint32]netip.AddrPort, len(old)+1)
		for k, v := range old {
			next[k] = v
		}
		next[ip] = from
		t.p.Store(&next)
	}
	t.mu.Unlock()
}

// Lookup resolves the UDP endpoint for an outer destination address.
// Wait-free: it runs per egress burst on every queue concurrently.
func (t *PeerTable) Lookup(ip uint32) (netip.AddrPort, bool) {
	ap, ok := (*t.p.Load())[ip]
	return ap, ok
}

// Len returns the number of learned peers.
func (t *PeerTable) Len() int { return len(*t.p.Load()) }
