//go:build linux && arm64

package sockio

// The stdlib syscall table predates sendmmsg; the numbers are ABI-frozen
// per architecture, so defining them locally is safe.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
