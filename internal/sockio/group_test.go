package sockio

import (
	"encoding/binary"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"pepc/internal/pkt"
)

// gtpPayload builds the minimal datagram shape the group's steering
// program classifies as a GTP-U envelope — PEPC's wire format of outer
// IPv4 (option-free) carrying UDP to port 2152 with the outer TEID at
// offset 32.
func gtpPayload(teid uint32, tail byte) []byte {
	p := make([]byte, pkt.IPv4HeaderLen+pkt.UDPHeaderLen+8+4)
	p[0] = 0x45
	binary.BigEndian.PutUint16(p[2:4], uint16(len(p)))
	p[9] = pkt.ProtoUDP
	binary.BigEndian.PutUint32(p[12:16], 0xC0A83201)             // outer src (eNB)
	binary.BigEndian.PutUint32(p[16:20], 0x0A000001)             // outer dst (core)
	binary.BigEndian.PutUint16(p[20:22], 2152)                   // UDP src port
	binary.BigEndian.PutUint16(p[22:24], 2152)                   // UDP dst port (GTP-U)
	binary.BigEndian.PutUint16(p[24:26], uint16(len(p)-pkt.IPv4HeaderLen))
	p[28] = 0x30                                                 // GTP-U v1 flags
	p[29] = 0xff                                                 // G-PDU
	binary.BigEndian.PutUint16(p[30:32], 4)
	binary.BigEndian.PutUint32(p[32:36], teid)
	p[len(p)-1] = tail
	return p
}

// TestGroupSingleIsPlainConn covers graceful degradation: a group of one
// is a bare Conn — no reuseport, no steering — and carries a Sender →
// Receiver round trip byte-identically to the single-socket path.
func TestGroupSingleIsPlainConn(t *testing.T) {
	g, err := ListenGroup("udp4", "127.0.0.1:0", 1)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer g.Close()
	if g.Size() != 1 {
		t.Fatalf("Size = %d, want 1", g.Size())
	}
	if g.Steered() {
		t.Fatal("single-socket group claims a steering program")
	}

	suc, err := net.Dial("udp4", g.LocalAddrPort().String())
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewConn(suc.(*net.UDPConn))
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	pool := pkt.NewPool(512, 64)
	snd := NewSender(tx, 4, -1)
	want := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("charlie")}
	for _, p := range want {
		b := pool.Get()
		b.SetBytes(p)
		if err := snd.Queue(b, netip.AddrPort{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReceiver(g.Queue(0), pool, 4)
	defer r.Close()
	g.Queue(0).UDPConn().SetReadDeadline(time.Now().Add(5 * time.Second))
	got := 0
	for got < len(want) {
		n, err := r.Recv()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if string(r.Buf(i).Bytes()) != string(want[got]) {
				t.Fatalf("datagram %d = %q, want %q", got, r.Buf(i).Bytes(), want[got])
			}
			if r.Buf(i).Headroom() != 64 {
				t.Fatalf("headroom = %d, want 64", r.Buf(i).Headroom())
			}
			got++
		}
	}
	if st := g.Stats(); st.RxPackets != uint64(len(want)) {
		t.Fatalf("group RxPackets = %d, want %d", st.RxPackets, len(want))
	}
}

// TestGroupDistribution asserts every queue of a steered group receives
// traffic under multi-source load, and that the steering is the
// documented flow affinity: TEID t lands on queue t mod n, regardless of
// which source socket sent it.
func TestGroupDistribution(t *testing.T) {
	const queues = 4
	g, err := ListenGroup("udp4", "127.0.0.1:0", queues)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer g.Close()
	if g.Size() != queues {
		t.Skipf("multi-queue group unavailable (size %d): portable fallback platform", g.Size())
	}
	if !g.Steered() {
		t.Skip("kernel refused SO_ATTACH_REUSEPORT_CBPF; steering untestable")
	}

	// Multi-source load: several sender sockets, each spraying TEIDs
	// across every residue class.
	const sources = 4
	const perSource = 32
	for s := 0; s < sources; s++ {
		sc, err := net.Dial("udp4", g.LocalAddrPort().String())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perSource; i++ {
			teid := uint32(s*perSource + i)
			if _, err := sc.Write(gtpPayload(teid, byte(s))); err != nil {
				t.Fatal(err)
			}
		}
		sc.Close()
	}

	total := 0
	for q := 0; q < queues; q++ {
		ms := make([]Message, 8)
		for i := range ms {
			ms[i].Buf = make([]byte, 256)
		}
		c := g.Queue(q)
		c.UDPConn().SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		seen := 0
		for {
			n, err := c.ReadBatch(ms)
			if err != nil {
				break // deadline: queue drained
			}
			for i := 0; i < n; i++ {
				teid := binary.BigEndian.Uint32(ms[i].Buf[32:36])
				if int(teid%queues) != q {
					t.Fatalf("queue %d received TEID %d (wants residue %d)", q, teid, teid%queues)
				}
				seen++
			}
		}
		if seen == 0 {
			t.Fatalf("queue %d received no traffic under multi-source load", q)
		}
		total += seen
	}
	// Loopback may drop under pressure but most of the modest load must
	// arrive, and it must spread: every queue already asserted nonzero.
	if total < sources*perSource/2 {
		t.Fatalf("only %d of %d datagrams arrived across the group", total, sources*perSource)
	}
}

// TestGroupFlowAffinityPlainIP covers the non-GTP branch of the steering
// program: plain IPv4 datagrams (downlink from the SGi) select their
// queue by destination address, so one UE's downlink stays on one queue.
func TestGroupFlowAffinityPlainIP(t *testing.T) {
	const queues = 2
	g, err := ListenGroup("udp4", "127.0.0.1:0", queues)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer g.Close()
	if g.Size() != queues || !g.Steered() {
		t.Skip("steered multi-queue group unavailable")
	}

	sc, err := net.Dial("udp4", g.LocalAddrPort().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	const per = 8
	mk := func(dst uint32) []byte {
		p := make([]byte, pkt.IPv4HeaderLen+8)
		p[0] = 0x45
		binary.BigEndian.PutUint16(p[2:4], uint16(len(p)))
		p[9] = pkt.ProtoUDP
		binary.BigEndian.PutUint32(p[16:20], dst)
		return p
	}
	for i := 0; i < per; i++ {
		if _, err := sc.Write(mk(0x0A000000)); err != nil { // dst ≡ 0 (mod 2)
			t.Fatal(err)
		}
		if _, err := sc.Write(mk(0x0A000001)); err != nil { // dst ≡ 1 (mod 2)
			t.Fatal(err)
		}
	}
	for q := 0; q < queues; q++ {
		ms := make([]Message, 4)
		for i := range ms {
			ms[i].Buf = make([]byte, 256)
		}
		c := g.Queue(q)
		c.UDPConn().SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		seen := 0
		for {
			n, err := c.ReadBatch(ms)
			if err != nil {
				break
			}
			for i := 0; i < n; i++ {
				dst := binary.BigEndian.Uint32(ms[i].Buf[16:20])
				if int(dst%queues) != q {
					t.Fatalf("queue %d received IPv4 dst %08x (wants residue %d)", q, dst, dst%queues)
				}
				seen++
			}
		}
		if seen == 0 {
			t.Fatalf("queue %d received no plain-IP traffic", q)
		}
	}
}

// TestGroupConcurrentSendersSharedPeerTable is the race-mode guard for
// the multi-queue egress model: one Sender per queue, all resolving
// destinations through a single copy-on-write PeerTable while rx-side
// learns churn it concurrently.
func TestGroupConcurrentSendersSharedPeerTable(t *testing.T) {
	g, err := ListenGroup("udp4", "127.0.0.1:0", 2)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer g.Close()

	sinkPC, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	sink := sinkPC.LocalAddr().(*net.UDPAddr).AddrPort()
	go func() { // drain so the senders never block on a full socket buffer
		buf := make([]byte, 2048)
		sinkPC.SetReadDeadline(time.Now().Add(10 * time.Second))
		for {
			if _, _, err := sinkPC.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	defer sinkPC.Close()

	pt := NewPeerTable()
	for ip := uint32(0); ip < 8; ip++ {
		pt.Learn(ip, sink)
	}

	const rounds = 400
	var wg sync.WaitGroup
	// Learner: churns mappings (including re-learns of existing keys,
	// the eNodeB-restart path) while the senders look up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			pt.Learn(uint32(i%64), sink)
			pt.Learn(uint32(1000+i), netip.AddrPortFrom(sink.Addr(), uint16(10000+i%100)))
		}
	}()
	for q := 0; q < g.Size(); q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			pool := pkt.NewPool(512, 64)
			snd := NewSender(g.Queue(q), 8, time.Hour)
			defer snd.Close()
			for i := 0; i < rounds; i++ {
				dst, ok := pt.Lookup(uint32(i % 8))
				if !ok {
					t.Errorf("queue %d: mapping %d vanished", q, i%8)
					return
				}
				b := pool.Get()
				b.SetBytes([]byte{byte(q), byte(i)})
				if err := snd.Queue(b, dst); err != nil {
					t.Errorf("queue %d: %v", q, err)
					return
				}
				if i%16 == 0 {
					if err := snd.Flush(); err != nil {
						t.Errorf("queue %d: flush: %v", q, err)
						return
					}
				}
			}
		}(q)
	}
	wg.Wait()
	if pt.Len() < 8 {
		t.Fatalf("PeerTable lost entries: Len = %d", pt.Len())
	}
	if got, ok := pt.Lookup(3); !ok || got != sink {
		t.Fatalf("Lookup(3) = %v, %v after churn", got, ok)
	}
}
