//go:build !linux || !(amd64 || arm64)

package sockio

import "net"

// listenGroupOS is the portable substrate: no SO_REUSEPORT, so a
// requested multi-queue group degrades to one plain socket — callers see
// Size()==1 and run the single-queue daemon shape unchanged.
func listenGroupOS(network, addr string, n int) ([]*Conn, bool, error) {
	pc, err := net.ListenPacket(network, addr)
	if err != nil {
		return nil, false, err
	}
	c, err := NewConn(pc.(*net.UDPConn))
	if err != nil {
		pc.Close()
		return nil, false, err
	}
	return []*Conn{c}, false, nil
}
