//go:build !linux || !(amd64 || arm64)

package sockio

// This is the portable substrate: no vectorized syscalls, so each batch
// call degenerates to one datagram per kernel crossing through the
// standard net package. The batch API shape (and the Receiver/Sender
// machinery above it) is unchanged, so callers are oblivious — they just
// measure syscalls/packet ≈ 1.

// Batched reports whether this platform performs true vectorized I/O.
func Batched() bool { return false }

type rxState struct{}
type txState struct{}

func (c *Conn) initOS() {}

func (c *Conn) readBatch(ms []Message) (int, error) {
	n, ap, err := c.uc.ReadFromUDPAddrPort(ms[0].Buf)
	c.stats.RxCalls.Add(1)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = ap
	return 1, nil
}

func (c *Conn) writeBatch(ms []Message) (int, error) {
	for i := range ms {
		var err error
		if ms[i].Addr.IsValid() {
			_, err = c.uc.WriteToUDPAddrPort(ms[i].Buf[:ms[i].N], ms[i].Addr)
		} else {
			_, err = c.uc.Write(ms[i].Buf[:ms[i].N])
		}
		c.stats.TxCalls.Add(1)
		if err != nil {
			return i, err
		}
	}
	return len(ms), nil
}
