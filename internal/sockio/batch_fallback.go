//go:build !linux || !(amd64 || arm64)

package sockio

// This is the portable substrate: no vectorized syscalls, so each batch
// call degenerates to one datagram per kernel crossing through the
// standard net package (the tag-free logic in batch_portable.go). The
// batch API shape (and the Receiver/Sender machinery above it) is
// unchanged, so callers are oblivious — they just measure
// syscalls/packet ≈ 1.

// Batched reports whether this platform performs true vectorized I/O.
func Batched() bool { return false }

type rxState struct{}
type txState struct{}

func (c *Conn) initOS() {}

func (c *Conn) readBatch(ms []Message) (int, error) {
	return c.fallbackReadBatch(ms)
}

func (c *Conn) writeBatch(ms []Message) (int, error) {
	return c.fallbackWriteBatch(ms)
}
