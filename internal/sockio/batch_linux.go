//go:build linux && (amd64 || arm64)

package sockio

import (
	"net/netip"
	"syscall"
	"unsafe"
)

// Batched reports whether this platform performs true vectorized I/O
// (many datagrams per kernel crossing).
func Batched() bool { return true }

// mmsghdr mirrors struct mmsghdr: one msghdr plus the kernel-written
// datagram length. On the 64-bit targets this file builds for, Msghdr is
// 8-aligned, so the uint32 length needs explicit tail padding to keep an
// array of mmsghdr correctly laid out.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// osState is the preallocated per-direction scratch for one vectorized
// call: the mmsghdr array, one iovec per message, and raw sockaddr
// storage (Inet6-sized, the larger of the two families). Everything is
// reused call to call so the steady state performs no allocation, and
// everything is reachable from the Conn so the GC keeps it alive across
// the raw syscalls.
type osState struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6

	// fn is the netpoller callback, bound once so ReadBatch/WriteBatch
	// do not allocate a closure per call. It communicates through the
	// fields below.
	fn func(fd uintptr) bool

	want  int // messages in the call in flight (tx)
	count int // messages completed so far
	calls int // kernel crossings performed (including EAGAIN probes)
	errno syscall.Errno
}

type rxState struct{ osState }
type txState struct{ osState }

func (s *osState) ensure(n int) {
	if cap(s.hdrs) >= n {
		s.hdrs = s.hdrs[:n]
		s.iovs = s.iovs[:n]
		s.names = s.names[:n]
		return
	}
	s.hdrs = make([]mmsghdr, n)
	s.iovs = make([]syscall.Iovec, n)
	s.names = make([]syscall.RawSockaddrInet6, n)
}

func (c *Conn) initOS() {
	c.rx.fn = c.rxReady
	c.tx.fn = c.txReady
}

// rxReady is the raw-read callback: one recvmmsg attempt. Returning false
// parks the goroutine on the netpoller until the socket is readable.
func (c *Conn) rxReady(fd uintptr) bool {
	s := &c.rx.osState
	s.calls++
	n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&s.hdrs[0])), uintptr(len(s.hdrs)), 0, 0, 0)
	if errno != 0 {
		if errno == syscall.EAGAIN || errno == syscall.EINTR {
			return false
		}
		s.errno = errno
		return true
	}
	s.count = int(n)
	return true
}

func (c *Conn) readBatch(ms []Message) (int, error) {
	s := &c.rx.osState
	s.ensure(len(ms))
	for i := range ms {
		s.iovs[i].Base = &ms[i].Buf[0]
		s.iovs[i].SetLen(len(ms[i].Buf))
		h := &s.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&s.names[i]))
		h.Namelen = uint32(unsafe.Sizeof(s.names[i]))
		h.Iov = &s.iovs[i]
		h.Iovlen = 1
		h.Control = nil
		h.Controllen = 0
		h.Flags = 0
		s.hdrs[i].n = 0
	}
	s.count = 0
	s.calls = 0
	s.errno = 0
	err := c.rc.Read(s.fn)
	c.stats.RxCalls.Add(uint64(s.calls))
	if err != nil {
		return 0, err
	}
	if s.errno != 0 {
		return 0, wrapErrno(s.errno)
	}
	n := s.count
	for i := 0; i < n; i++ {
		ms[i].N = int(s.hdrs[i].n)
		ms[i].Addr = sockaddrToAddrPort(&s.names[i], s.hdrs[i].hdr.Namelen)
	}
	return n, nil
}

// txReady is the raw-write callback: sendmmsg over the not-yet-sent tail
// of the batch, looping on partial progress. Returning false parks until
// writable.
func (c *Conn) txReady(fd uintptr) bool {
	s := &c.tx.osState
	for s.count < s.want {
		s.calls++
		n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&s.hdrs[s.count])), uintptr(s.want-s.count), 0, 0, 0)
		if errno != 0 {
			if errno == syscall.EAGAIN {
				return false
			}
			if errno == syscall.EINTR {
				continue
			}
			s.errno = errno
			return true
		}
		s.count += int(n)
	}
	return true
}

func (c *Conn) writeBatch(ms []Message) (int, error) {
	s := &c.tx.osState
	s.ensure(len(ms))
	for i := range ms {
		s.iovs[i].Base = &ms[i].Buf[0]
		s.iovs[i].SetLen(ms[i].N)
		h := &s.hdrs[i].hdr
		if ms[i].Addr.IsValid() {
			nl := addrPortToSockaddr(&s.names[i], ms[i].Addr)
			h.Name = (*byte)(unsafe.Pointer(&s.names[i]))
			h.Namelen = nl
		} else {
			h.Name = nil
			h.Namelen = 0
		}
		h.Iov = &s.iovs[i]
		h.Iovlen = 1
		h.Control = nil
		h.Controllen = 0
		h.Flags = 0
		s.hdrs[i].n = 0
	}
	s.want = len(ms)
	s.count = 0
	s.calls = 0
	s.errno = 0
	err := c.rc.Write(s.fn)
	c.stats.TxCalls.Add(uint64(s.calls))
	n := s.count
	if err != nil {
		return n, err
	}
	if s.errno != 0 {
		return n, wrapErrno(s.errno)
	}
	return n, nil
}

// wrapErrno keeps the error path allocation light: socket-gone errnos
// collapse to ErrClosed, everything else surfaces as the syscall.Errno
// itself.
func wrapErrno(e syscall.Errno) error {
	if e == syscall.EBADF || e == syscall.ECONNRESET {
		return ErrClosed
	}
	return e
}

func sockaddrToAddrPort(sa *syscall.RawSockaddrInet6, namelen uint32) netip.AddrPort {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		port := sa4.Port>>8 | sa4.Port<<8
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), port)
	case syscall.AF_INET6:
		port := sa.Port>>8 | sa.Port<<8
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), port)
	}
	_ = namelen
	return netip.AddrPort{}
}

func addrPortToSockaddr(sa *syscall.RawSockaddrInet6, ap netip.AddrPort) uint32 {
	a := ap.Addr()
	if a.Is4() || a.Is4In6() {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		sa4.Family = syscall.AF_INET
		sa4.Addr = a.Unmap().As4()
		p := ap.Port()
		sa4.Port = p>>8 | p<<8
		return uint32(unsafe.Sizeof(*sa4))
	}
	sa.Family = syscall.AF_INET6
	sa.Addr = a.As16()
	p := ap.Port()
	sa.Port = p>>8 | p<<8
	sa.Scope_id = 0
	return uint32(unsafe.Sizeof(*sa))
}
