package sockio

import (
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"pepc/internal/pkt"
)

// pairConns returns a bound receiver conn and a connected sender conn on
// loopback UDP, skipping when the environment forbids sockets.
func pairConns(t *testing.T) (rx, tx *Conn) {
	t.Helper()
	pc, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	ruc := pc.(*net.UDPConn)
	suc, err := net.Dial("udp4", ruc.LocalAddr().String())
	if err != nil {
		ruc.Close()
		t.Skipf("loopback UDP dial: %v", err)
	}
	rx, err = NewConn(ruc)
	if err != nil {
		t.Fatal(err)
	}
	tx, err = NewConn(suc.(*net.UDPConn))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rx.Close(); tx.Close() })
	return rx, tx
}

// readAll reads from rx until want datagrams arrived or the deadline
// passes, appending payload copies to got.
func readAll(t *testing.T, rx *Conn, batch, want int) [][]byte {
	t.Helper()
	ms := make([]Message, batch)
	for i := range ms {
		ms[i].Buf = make([]byte, 2048)
	}
	var got [][]byte
	rx.UDPConn().SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(got) < want {
		n, err := rx.ReadBatch(ms)
		if err != nil {
			t.Fatalf("ReadBatch after %d/%d: %v", len(got), want, err)
		}
		for i := 0; i < n; i++ {
			got = append(got, append([]byte(nil), ms[i].Buf[:ms[i].N]...))
		}
	}
	return got
}

func TestBatchRoundTrip(t *testing.T) {
	rx, tx := pairConns(t)
	const n = 17
	ms := make([]Message, n)
	for i := range ms {
		p := []byte(fmt.Sprintf("datagram-%02d", i))
		ms[i].Buf = p
		ms[i].N = len(p)
		// connected socket: zero Addr
	}
	sent, err := tx.WriteBatch(ms)
	if err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, n)
	}
	got := readAll(t, rx, 8, n)
	for i, p := range got {
		want := fmt.Sprintf("datagram-%02d", i)
		if string(p) != want {
			t.Fatalf("datagram %d = %q, want %q", i, p, want)
		}
	}
	st := tx.Stats()
	if st.TxPackets != n {
		t.Fatalf("TxPackets = %d, want %d", st.TxPackets, n)
	}
	if Batched() && st.TxCalls > 2 {
		t.Fatalf("TxCalls = %d for one %d-packet burst; want <= 2", st.TxCalls, n)
	}
	rst := rx.Stats()
	if rst.RxPackets != n {
		t.Fatalf("RxPackets = %d, want %d", rst.RxPackets, n)
	}
	if Batched() && rst.RxCalls >= n {
		t.Fatalf("RxCalls = %d for %d packets; batching had no effect", rst.RxCalls, n)
	}
}

func TestWriteBatchExplicitAddr(t *testing.T) {
	rx, _ := pairConns(t)
	// Unconnected sender with per-message destination.
	pc, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	tx, err := NewConn(pc.(*net.UDPConn))
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	dst := rx.LocalAddrPort()
	ms := make([]Message, 3)
	for i := range ms {
		p := []byte{byte(i), 0xAB}
		ms[i].Buf = p
		ms[i].N = len(p)
		ms[i].Addr = dst
	}
	if n, err := tx.WriteBatch(ms); err != nil || n != 3 {
		t.Fatalf("WriteBatch = %d, %v", n, err)
	}
	got := readAll(t, rx, 4, 3)
	for i, p := range got {
		if len(p) != 2 || p[0] != byte(i) {
			t.Fatalf("datagram %d = %v", i, p)
		}
	}
}

func TestReadBatchSetsSourceAddr(t *testing.T) {
	rx, tx := pairConns(t)
	ms := []Message{{Buf: []byte("x"), N: 1}}
	if _, err := tx.WriteBatch(ms); err != nil {
		t.Fatal(err)
	}
	rms := make([]Message, 2)
	for i := range rms {
		rms[i].Buf = make([]byte, 64)
	}
	rx.UDPConn().SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := rx.ReadBatch(rms)
	if err != nil || n != 1 {
		t.Fatalf("ReadBatch = %d, %v", n, err)
	}
	wantAddr := tx.UDPConn().LocalAddr().(*net.UDPAddr).AddrPort()
	if rms[0].Addr.Port() != wantAddr.Port() {
		t.Fatalf("source = %v, want port %d", rms[0].Addr, wantAddr.Port())
	}
	if !rms[0].Addr.Addr().Is4() && !rms[0].Addr.Addr().Is4In6() {
		t.Fatalf("source addr %v is not v4", rms[0].Addr)
	}
}

func TestReadBatchDeadline(t *testing.T) {
	rx, _ := pairConns(t)
	ms := []Message{{Buf: make([]byte, 64)}}
	rx.UDPConn().SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	n, err := rx.ReadBatch(ms)
	if n != 0 || err == nil {
		t.Fatalf("ReadBatch = %d, %v; want deadline error", n, err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("deadline ignored")
	}
}

func TestReceiverLandsInPoolBufs(t *testing.T) {
	rx, tx := pairConns(t)
	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	r := NewReceiver(rx, pool, 8)
	defer r.Close()

	snd := NewSender(tx, 4, -1) // no linger: flush per queue
	for i := 0; i < 5; i++ {
		b := pool.Get()
		b.SetBytes([]byte{byte('a' + i), 1, 2, 3})
		if err := snd.Queue(b, netip.AddrPort{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := snd.Close(); err != nil {
		t.Fatal(err)
	}

	rx.UDPConn().SetReadDeadline(time.Now().Add(5 * time.Second))
	got := 0
	for got < 5 {
		n, err := r.Recv()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			b := r.Take(i)
			if b.Len() != 4 {
				t.Fatalf("len = %d, want 4", b.Len())
			}
			if b.Headroom() != pkt.DefaultHeadroom {
				t.Fatalf("headroom = %d, want %d (encap room must survive the rx path)",
					b.Headroom(), pkt.DefaultHeadroom)
			}
			if b.Bytes()[0] != byte('a'+got) {
				t.Fatalf("datagram %d leads with %q", got, b.Bytes()[0])
			}
			if !r.From(i).IsValid() {
				t.Fatal("source address not recorded")
			}
			b.Free()
			got++
		}
	}
}

func TestSenderLinger(t *testing.T) {
	rx, tx := pairConns(t)
	pool := pkt.NewPool(512, 64)
	snd := NewSender(tx, 16, 50*time.Millisecond)
	b := pool.Get()
	b.SetBytes([]byte("lingering"))
	if err := snd.Queue(b, netip.AddrPort{}); err != nil {
		t.Fatal(err)
	}
	if snd.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (partial batch must linger)", snd.Pending())
	}
	// Not yet expired: nothing flushes.
	if err := snd.FlushExpired(time.Now()); err != nil {
		t.Fatal(err)
	}
	if snd.Pending() != 1 {
		t.Fatal("flushed before linger budget expired")
	}
	// Past the budget: flushes.
	if err := snd.FlushExpired(time.Now().Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if snd.Pending() != 0 {
		t.Fatal("linger expiry did not flush")
	}
	got := readAll(t, rx, 4, 1)
	if string(got[0]) != "lingering" {
		t.Fatalf("got %q", got[0])
	}
}

func TestSenderFullBatchFlushes(t *testing.T) {
	rx, tx := pairConns(t)
	pool := pkt.NewPool(512, 64)
	snd := NewSender(tx, 4, time.Hour) // linger would never expire
	for i := 0; i < 4; i++ {
		b := pool.Get()
		b.SetBytes([]byte{byte(i)})
		if err := snd.Queue(b, netip.AddrPort{}); err != nil {
			t.Fatal(err)
		}
	}
	if snd.Pending() != 0 {
		t.Fatalf("Pending = %d after full batch, want 0", snd.Pending())
	}
	readAll(t, rx, 4, 4)
}

func TestPeerTable(t *testing.T) {
	pt := NewPeerTable()
	a1 := netip.MustParseAddrPort("127.0.0.1:1111")
	a2 := netip.MustParseAddrPort("127.0.0.1:2222")
	pt.Learn(0x0A000001, a1)
	if got, ok := pt.Lookup(0x0A000001); !ok || got != a1 {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	pt.Learn(0x0A000001, a1) // unchanged: read-lock path
	pt.Learn(0x0A000001, a2) // re-learn after eNB restart
	if got, _ := pt.Lookup(0x0A000001); got != a2 {
		t.Fatalf("re-learn: Lookup = %v, want %v", got, a2)
	}
	if _, ok := pt.Lookup(0x0A000002); ok {
		t.Fatal("unknown peer resolved")
	}
	if pt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pt.Len())
	}
}

// TestZeroAllocBatchIO guards the acceptance criterion: steady-state
// batched rx and tx perform zero allocations per burst. The pool caches
// are pre-warmed and the peer table pre-learned, as in the daemon's
// steady state.
func TestZeroAllocBatchIO(t *testing.T) {
	rx, tx := pairConns(t)
	pool := pkt.NewPool(512, 64)
	const batch = 8
	r := NewReceiver(rx, pool, batch)
	defer r.Close()
	snd := NewSender(tx, batch, time.Hour)
	defer snd.Close()
	pt := NewPeerTable()
	pt.Learn(1, rx.LocalAddrPort())

	payload := make([]byte, 64)
	rx.UDPConn().SetReadDeadline(time.Now().Add(30 * time.Second))

	round := func(alloc func() *pkt.Buf) {
		for i := 0; i < batch; i++ {
			b := alloc()
			b.SetBytes(payload)
			dst, _ := pt.Lookup(1)
			_ = dst // exercised for the lookup's alloc behaviour; connected conn sends anyway
			if err := snd.Queue(b, netip.AddrPort{}); err != nil {
				t.Fatal(err)
			}
		}
		// Full batch auto-flushed by Queue.
		got := 0
		for got < batch {
			n, err := r.Recv()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				b := r.Take(i)
				r.Cache().Put(b)
				got++
			}
		}
	}
	// Warm round binds the sender's cache and grows the syscall scratch;
	// steady-state rounds then draw send buffers from the sender's own
	// free cycle, as the daemon's egress workers do.
	round(pool.Get)

	steady := func() { round(snd.Cache().Get) }
	if allocs := testing.AllocsPerRun(50, steady); allocs != 0 {
		t.Fatalf("batched rx/tx steady state allocates %.1f allocs/round, want 0", allocs)
	}
}
