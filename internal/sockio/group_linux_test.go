//go:build linux && (amd64 || arm64)

package sockio

import "testing"

// TestFlowSteerProgShape pins the steering program's structure so a
// refactor cannot silently change the queue-selection contract (tested
// behaviorally in TestGroupDistribution only on kernels that accept the
// attach).
func TestFlowSteerProgShape(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		prog := flowSteerProg(n)
		if len(prog) != 11 {
			t.Fatalf("n=%d: program length %d, want 11", n, len(prog))
		}
		if prog[9].k != uint32(n) || prog[9].code != bpfAluModK {
			t.Fatalf("n=%d: mod operand %d (code %#x)", n, prog[9].k, prog[9].code)
		}
		if prog[8].k != 32 {
			t.Fatalf("outer TEID load at offset %d, want 32", prog[8].k)
		}
		if prog[6].k != 16 {
			t.Fatalf("IPv4 dst load at offset %d, want 16", prog[6].k)
		}
		if prog[5].k != 2152 || prog[5].jt != 2 {
			t.Fatalf("GTP-U port jeq k=%d jt=%d, want k=2152 jt=2", prog[5].k, prog[5].jt)
		}
		if prog[1].k != 0x45 || prog[1].jf != 4 {
			t.Fatalf("IPv4 check jeq k=%#x jf=%d, want k=0x45 jf=4", prog[1].k, prog[1].jf)
		}
	}
}
