//go:build linux && amd64

package sockio

// The stdlib syscall table predates sendmmsg; the numbers are ABI-frozen
// per architecture, so defining them locally is safe.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
