package sockio

import (
	"net/netip"
	"time"

	"pepc/internal/hdr"
	"pepc/internal/pkt"
	"pepc/internal/sim"
)

// Receiver scatters rx bursts from a Conn directly into pool-backed
// packet buffers: one ReadBatch lands up to batch datagrams, each in its
// own pkt.Buf with the pool's encap headroom preserved, refilled from a
// per-receiver PoolCache so the steady state touches the shared pool once
// per half-cache rather than once per packet. Single goroutine (the rx
// loop).
type Receiver struct {
	conn  *Conn
	cache *pkt.PoolCache
	msgs  []Message
	bufs  []*pkt.Buf
	n     int
	stamp bool
}

// NewReceiver builds a receiver reading bursts of up to batch datagrams
// into buffers drawn from pool.
func NewReceiver(conn *Conn, pool *pkt.Pool, batch int) *Receiver {
	if batch <= 0 {
		batch = DefaultBatch
	}
	cacheSize := 4 * batch
	if cacheSize < pkt.DefaultCacheSize {
		cacheSize = pkt.DefaultCacheSize
	}
	return &Receiver{
		conn:  conn,
		cache: pool.NewCache(cacheSize),
		msgs:  make([]Message, batch),
		bufs:  make([]*pkt.Buf, batch),
	}
}

// Conn returns the receiver's socket.
func (r *Receiver) Conn() *Conn { return r.conn }

// Cache returns the receiver's pool cache — shared with the steering
// stage so drops free back into the same per-worker level the refills
// come from.
func (r *Receiver) Cache() *pkt.PoolCache { return r.cache }

// StampRx enables ingress timestamping: every datagram of a Recv burst
// gets its Meta.TSNanos set from one clock read per burst (not per
// packet), arming downstream wire-to-wire latency recording. The
// sub-burst error this batching introduces is bounded by the burst's
// own kernel-copy time — far below the histogram's bucket width at
// realistic rates — and errs toward over-reporting latency, never
// under.
func (r *Receiver) StampRx(on bool) { r.stamp = on }

// Recv performs one batched read and returns the number of datagrams
// landed. Each datagram i is in Buf(i) (length set, headroom intact) with
// its source address at From(i). Buffers not taken with Take before the
// next Recv are recycled. Blocks per the conn's read deadline.
func (r *Receiver) Recv() (int, error) {
	for i := range r.bufs {
		if r.bufs[i] == nil {
			r.bufs[i] = r.cache.Get()
		}
		r.msgs[i].Buf = r.bufs[i].RecvSlice()
	}
	n, err := r.conn.ReadBatch(r.msgs)
	for i := 0; i < n; i++ {
		if serr := r.bufs[i].SetRecvLen(r.msgs[i].N); serr != nil {
			// Datagram larger than the buffer (truncated by the kernel):
			// drop it rather than forward a clipped packet.
			r.bufs[i].SetRecvLen(0)
		}
	}
	if r.stamp && n > 0 {
		now := sim.Now()
		for i := 0; i < n; i++ {
			r.bufs[i].Meta.TSNanos = now
		}
	}
	r.n = n
	return n, err
}

// Buf returns datagram i of the last Recv without transferring ownership.
func (r *Receiver) Buf(i int) *pkt.Buf { return r.bufs[i] }

// Take transfers ownership of datagram i to the caller; the next Recv
// draws a fresh buffer for that slot.
func (r *Receiver) Take(i int) *pkt.Buf {
	b := r.bufs[i]
	r.bufs[i] = nil
	return b
}

// TakeAll transfers ownership of every datagram of the last Recv,
// appending them to dst in arrival order.
func (r *Receiver) TakeAll(dst []*pkt.Buf) []*pkt.Buf {
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.bufs[i])
		r.bufs[i] = nil
	}
	return dst
}

// From returns the source address of datagram i of the last Recv.
func (r *Receiver) From(i int) netip.AddrPort { return r.msgs[i].Addr }

// Close releases the receiver's cached buffers back to the shared pool.
func (r *Receiver) Close() {
	for i := range r.bufs {
		if r.bufs[i] != nil {
			r.cache.Put(r.bufs[i])
			r.bufs[i] = nil
		}
	}
	r.cache.Flush()
}

// Sender coalesces egress packet buffers into gathered tx bursts: Queue
// stages a buffer for a destination, a full batch flushes in one
// WriteBatch, and a small linger budget bounds how long a partial batch
// may wait for companions. Sent buffers are released through a PoolCache
// so the free path is batched too. Single goroutine (one egress worker);
// several senders may share one Conn.
type Sender struct {
	conn   *Conn
	msgs   []Message
	bufs   []*pkt.Buf
	n      int
	linger time.Duration
	since  time.Time // when the oldest pending message was queued
	cache  pkt.PoolCache
	lat    *hdr.Histogram

	// Sent and Errs count transmitted datagrams and failed flushes
	// (single-writer; read between runs or via the owner's stats hook).
	Sent uint64
	Errs uint64
}

// DefaultLinger bounds how long a partial tx batch waits for more egress
// before flushing: long enough to aggregate a burst arriving back to
// back, far below any latency budget.
const DefaultLinger = 100 * time.Microsecond

// NewSender builds a sender flushing bursts of up to batch datagrams,
// holding partial batches at most linger (0 selects DefaultLinger;
// negative disables lingering, flushing every Queue immediately).
func NewSender(conn *Conn, batch int, linger time.Duration) *Sender {
	if batch <= 0 {
		batch = DefaultBatch
	}
	if linger == 0 {
		linger = DefaultLinger
	}
	return &Sender{
		conn:   conn,
		msgs:   make([]Message, batch),
		bufs:   make([]*pkt.Buf, batch),
		linger: linger,
	}
}

// Conn returns the sender's socket.
func (s *Sender) Conn() *Conn { return s.conn }

// Cache returns the sender's free-side pool cache (bound lazily by the
// first flushed buffer). Callers that drop packets instead of queueing
// them (no route, closed peer) should free through it so the drop path
// stays batched, and sources that build packets to send can draw from it
// so the sender's free cycle feeds its own allocation.
func (s *Sender) Cache() *pkt.PoolCache { return &s.cache }

// Pending returns the number of staged, unflushed datagrams.
func (s *Sender) Pending() int { return s.n }

// SetLatency arms wire-to-wire latency recording: each Flush records
// now − Meta.TSNanos for every stamped datagram it transmits, with one
// clock read per flushed burst. Recording at flush (not at Queue)
// deliberately charges the linger wait to the packet — the tail a
// coalescing egress actually imposes on the wire. Pass nil to disable.
func (s *Sender) SetLatency(h *hdr.Histogram) { s.lat = h }

// Queue stages b for transmission to dst, taking ownership. A zero dst
// sends on the connected socket's peer. The batch flushes when full (or
// immediately when lingering is disabled).
func (s *Sender) Queue(b *pkt.Buf, dst netip.AddrPort) error {
	if s.n == 0 && s.linger > 0 {
		// The linger clock only matters when partial batches may wait;
		// with lingering disabled every Queue flushes below.
		s.since = time.Now()
	}
	s.msgs[s.n].Buf = b.Bytes()
	s.msgs[s.n].N = b.Len()
	s.msgs[s.n].Addr = dst
	s.bufs[s.n] = b
	s.n++
	if s.n == len(s.msgs) || s.linger < 0 {
		return s.Flush()
	}
	return nil
}

// Flush transmits every staged datagram in one vectorized write and
// releases their buffers. Buffers are released on error too (the packets
// are gone either way).
func (s *Sender) Flush() error {
	if s.n == 0 {
		return nil
	}
	n, err := s.conn.WriteBatch(s.msgs[:s.n])
	s.Sent += uint64(n)
	if err != nil {
		s.Errs++
	}
	if s.lat != nil {
		now := sim.Now()
		for i := 0; i < s.n; i++ {
			if ts := s.bufs[i].Meta.TSNanos; ts != 0 {
				s.lat.Record(now - ts)
			}
		}
	}
	for i := 0; i < s.n; i++ {
		s.cache.Put(s.bufs[i])
		s.bufs[i] = nil
	}
	s.n = 0
	return err
}

// FlushExpired flushes the pending batch if it has lingered past the
// budget. Call from the tx loop's idle path with the current time — one
// clock read per housekeep pass, shared across every sender the loop
// owns: with N queues × M slices a per-sender time.Now() would multiply
// vDSO clock reads for no precision gain (the linger budget is orders of
// magnitude coarser than the read). Callers should skip the clock read
// entirely while Pending() is zero; with a zero now this is a no-op
// unless the budget has genuinely expired against the zero time.
func (s *Sender) FlushExpired(now time.Time) error {
	if s.n == 0 || now.Sub(s.since) < s.linger {
		return nil
	}
	return s.Flush()
}

// Close flushes pending datagrams and spills the free-side cache.
func (s *Sender) Close() error {
	err := s.Flush()
	s.cache.Flush()
	return err
}
