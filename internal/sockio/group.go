package sockio

import (
	"net"
	"net/netip"
)

// Group is the multi-queue socket substrate: n UDP sockets bound to the
// same local address via SO_REUSEPORT, each one an independent rx/tx lane
// with its own Conn (and therefore its own syscall scratch, stats, and tx
// serialization). The daemon runs one rx loop and one egress loop per
// queue, so rx parsing, demux steering, and tx syscalls all scale across
// cores with no shared hot state — the wire-path analogue of the
// share-nothing sharded data plane.
//
// Where the platform supports it, a classic-BPF program is attached to
// the reuseport group (SO_ATTACH_REUSEPORT_CBPF) steering datagrams by
// flow rather than by the kernel's default 4-tuple hash: GTP-U envelopes
// select the queue by TEID mod n and plain IPv4 by destination address
// mod n, so one UE's packets always land on one queue (per-flow ordering
// and cache affinity) even when every eNodeB sends from a single source
// port. When the program cannot be attached the group still works under
// the kernel's hash — distribution then needs source-port diversity.
//
// A group of one is byte-identical to a bare Conn: no SO_REUSEPORT, no
// steering program, just the single-socket path of the pre-multi-queue
// daemon. On platforms without reuseport support (the portable build-tag
// fallback) every requested size degrades to that single-socket group.
type Group struct {
	conns   []*Conn
	steered bool
}

// ListenGroup binds n UDP sockets to addr as one reuseport group and
// wraps each for batch I/O. n <= 1 (and any n on the portable fallback)
// yields a single plain socket. addr may carry port 0: the first bind
// picks the port, the rest join it.
func ListenGroup(network, addr string, n int) (*Group, error) {
	if n <= 1 {
		pc, err := net.ListenPacket(network, addr)
		if err != nil {
			return nil, err
		}
		c, err := NewConn(pc.(*net.UDPConn))
		if err != nil {
			pc.Close()
			return nil, err
		}
		return &Group{conns: []*Conn{c}}, nil
	}
	conns, steered, err := listenGroupOS(network, addr, n)
	if err != nil {
		return nil, err
	}
	return &Group{conns: conns, steered: steered}, nil
}

// Size returns the number of queues actually open (which may be 1 on
// platforms without reuseport regardless of what was requested).
func (g *Group) Size() int { return len(g.conns) }

// Queue returns queue i's socket. With the steering program attached,
// queue i receives exactly the flows whose steering key is ≡ i (mod
// Size); under the kernel hash the mapping is opaque but stable per
// 4-tuple.
func (g *Group) Queue(i int) *Conn { return g.conns[i] }

// Steered reports whether the flow-steering cBPF program is attached
// (false on the portable fallback, on single-socket groups, and when the
// kernel refused the attach — the group then balances by 4-tuple hash).
func (g *Group) Steered() bool { return g.steered }

// LocalAddrPort returns the shared bound address of the group.
func (g *Group) LocalAddrPort() netip.AddrPort { return g.conns[0].LocalAddrPort() }

// Stats returns the syscall counters summed across every queue.
func (g *Group) Stats() StatsSnapshot {
	var agg StatsSnapshot
	for _, c := range g.conns {
		st := c.Stats()
		agg.RxCalls += st.RxCalls
		agg.RxPackets += st.RxPackets
		agg.TxCalls += st.TxCalls
		agg.TxPackets += st.TxPackets
	}
	return agg
}

// QueueStats returns queue i's own syscall counters (the per-queue
// breakdown the daemon folds into its wire stats line).
func (g *Group) QueueStats(i int) StatsSnapshot { return g.conns[i].Stats() }

// Close closes every queue socket, unblocking their batch calls.
func (g *Group) Close() error {
	var first error
	for _, c := range g.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
