package pkt

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// TestChecksumUpdate16MatchesRecompute proves the RFC 1624 incremental
// update equivalent to a full header re-sum over randomized headers: for
// a header with a 16-bit word changed from old to new, patching the
// stored checksum with ChecksumUpdate16 yields exactly the checksum a
// full recompute would.
func TestChecksumUpdate16MatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1624))
	hdr := make([]byte, IPv4HeaderLen)
	for trial := 0; trial < 2000; trial++ {
		rng.Read(hdr)
		hdr[0] = 0x45 // valid version/IHL so the vector resembles real headers
		// Zero the checksum field, compute, store.
		hdr[10], hdr[11] = 0, 0
		sum := Checksum(hdr)
		binary.BigEndian.PutUint16(hdr[10:], sum)

		// Mutate one aligned 16-bit word (never the checksum itself).
		wordOff := 2 * (rng.Intn(IPv4HeaderLen/2-1) + 1)
		if wordOff == 10 {
			wordOff = 2
		}
		old := binary.BigEndian.Uint16(hdr[wordOff:])
		// Bias toward nonzero new words: the length patch the template
		// engine performs always writes >= 36.
		new := uint16(rng.Intn(0xffff) + 1)
		binary.BigEndian.PutUint16(hdr[wordOff:], new)

		incremental := ChecksumUpdate16(sum, old, new)

		hdr[10], hdr[11] = 0, 0
		full := Checksum(hdr)
		binary.BigEndian.PutUint16(hdr[10:], full)

		if incremental != full {
			t.Fatalf("trial %d off %d: old %#04x new %#04x incremental %#04x full %#04x",
				trial, wordOff, old, new, incremental, full)
		}
		if !VerifyChecksum(hdr) {
			t.Fatalf("trial %d: patched header does not verify", trial)
		}
	}
}

// TestFoldChecksumUDPZeroMapsToAllOnes pins the RFC 768 transmission
// rule: a UDP checksum that computes to 0x0000 must be sent as 0xFFFF
// (zero on the wire means "no checksum"); every other value folds like
// FoldChecksum.
func TestFoldChecksumUDPZeroMapsToAllOnes(t *testing.T) {
	// A partial sum that folds to 0xFFFF complements to 0x0000.
	for _, s := range []uint32{0xffff, 0x1fffe, 0xfffe0001} {
		if FoldChecksum(s) != 0 {
			t.Fatalf("test vector %#x does not fold to zero", s)
		}
		if got := FoldChecksumUDP(s); got != 0xffff {
			t.Fatalf("FoldChecksumUDP(%#x) = %#04x, want 0xffff", s, got)
		}
	}
	rng := rand.New(rand.NewSource(768))
	for trial := 0; trial < 2000; trial++ {
		s := rng.Uint32()
		want := FoldChecksum(s)
		got := FoldChecksumUDP(s)
		if want == 0 {
			want = 0xffff
		}
		if got != want {
			t.Fatalf("FoldChecksumUDP(%#x) = %#04x, want %#04x", s, got, want)
		}
	}
}

// TestChecksumPartialFoldComposes checks the streaming form: summing a
// buffer in arbitrary splits and folding once equals the one-shot sum.
func TestChecksumPartialFoldComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(1071))
	b := make([]byte, 96)
	rng.Read(b)
	want := Checksum(b)
	for _, split := range []int{0, 2, 20, 48, 96} {
		got := FoldChecksum(ChecksumPartial(b[split:], ChecksumPartial(b[:split], 0)))
		if got != want {
			t.Fatalf("split %d: %#04x != %#04x", split, got, want)
		}
	}
}
