package pkt

import (
	"testing"
	"testing/quick"
)

func TestFlowReverse(t *testing.T) {
	f := Flow{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	r := f.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 20 || r.DstPort != 10 || r.Proto != ProtoTCP {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double reverse is not identity")
	}
}

func TestFastHashSymmetry(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		a := Flow{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		return a.FastHash() == a.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionalHashDiffers(t *testing.T) {
	a := Flow{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoUDP}
	if a.Hash() == a.Reverse().Hash() {
		t.Fatal("directional hashes of asymmetric flow collide")
	}
}

func TestHashUint32Distribution(t *testing.T) {
	// Sequential TEIDs must spread across buckets; count collisions into
	// 256 buckets for 64K sequential keys and require rough uniformity.
	const n, buckets = 1 << 16, 256
	var counts [buckets]int
	for i := uint32(0); i < n; i++ {
		counts[HashUint32(i)%buckets]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d has %d entries, want ~%d", b, c, want)
		}
	}
}

func TestHashUint64Avalanche(t *testing.T) {
	// A single flipped input bit must flip a substantial number of output
	// bits on average.
	total := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		x := uint64(i) * 0x9e3779b97f4a7c15
		h1 := HashUint64(x)
		h2 := HashUint64(x ^ 1)
		d := h1 ^ h2
		for d != 0 {
			total += int(d & 1)
			d >>= 1
		}
	}
	avg := float64(total) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %.1f bits, want ~32", avg)
	}
}

func TestFlowString(t *testing.T) {
	f := Flow{Src: IPv4Addr(10, 0, 0, 1), Dst: IPv4Addr(8, 8, 8, 8), SrcPort: 1234, DstPort: 53, Proto: ProtoUDP}
	want := "10.0.0.1:1234 -> 8.8.8.8:53/17"
	if got := f.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers are padded with a zero byte.
	b := []byte{0xff, 0xff, 0xff}
	got := Checksum(b)
	want := Checksum([]byte{0xff, 0xff, 0xff, 0x00})
	if got != want {
		t.Fatalf("odd-length checksum = %#04x, want %#04x", got, want)
	}
}

func TestPseudoHeaderChecksumVerifies(t *testing.T) {
	src, dst := IPv4Addr(10, 0, 0, 1), IPv4Addr(10, 0, 0, 2)
	seg := make([]byte, UDPHeaderLen+4)
	u := UDP{SrcPort: 100, DstPort: 200, Length: uint16(len(seg))}
	u.SerializeTo(seg)
	copy(seg[UDPHeaderLen:], "data")
	cs := PseudoHeaderChecksum(ProtoUDP, src, dst, seg)
	// Insert and re-verify: summing with the checksum in place must yield 0.
	seg[6] = byte(cs >> 8)
	seg[7] = byte(cs)
	if got := PseudoHeaderChecksum(ProtoUDP, src, dst, seg); got != 0 {
		t.Fatalf("re-checksum with checksum in place = %#04x, want 0", got)
	}
}

func BenchmarkFlowFastHash(b *testing.B) {
	f := Flow{Src: 0x0a000001, Dst: 0x08080808, SrcPort: 1234, DstPort: 53, Proto: ProtoUDP}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += f.FastHash()
	}
	_ = sink
}

func BenchmarkHashUint32(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += HashUint32(uint32(i))
	}
	_ = sink
}
