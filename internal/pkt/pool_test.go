package pkt

import (
	"bytes"
	"testing"
)

func TestPoolGetBatchPutBatchRecycles(t *testing.T) {
	pl := NewPool(512, 64)
	bs := make([]*Buf, 8)
	pl.GetBatch(bs)
	for i, b := range bs {
		if b == nil || b.Len() != 0 || b.Headroom() != 64 {
			t.Fatalf("buf %d: %v", i, b)
		}
		b.SetBytes([]byte{byte(i)})
	}
	seen := map[*Buf]bool{}
	for _, b := range bs {
		seen[b] = true
	}
	pl.PutBatch(bs)
	got := make([]*Buf, 8)
	pl.GetBatch(got)
	recycled := 0
	for _, b := range got {
		if b.Len() != 0 || b.Headroom() != 64 {
			t.Fatalf("recycled buf not reset: %v", b)
		}
		if seen[b] {
			recycled++
		}
	}
	if recycled != 8 {
		t.Fatalf("recycled %d of 8 buffers", recycled)
	}
}

func TestPoolPutBatchSkipsForeignAndNil(t *testing.T) {
	pl := NewPool(512, 64)
	other := NewPool(512, 64)
	bs := []*Buf{pl.Get(), nil, other.Get(), NewBuf(512, 64), pl.Get()}
	pl.PutBatch(bs) // must not panic or adopt foreign buffers
	got := make([]*Buf, 2)
	pl.GetBatch(got)
	for _, b := range got {
		if b.pool != pl {
			t.Fatal("foreign buffer adopted into pool")
		}
	}
}

func TestPoolCacheRefillAndSpill(t *testing.T) {
	pl := NewPool(512, 64)
	c := pl.NewCache(8)
	// Fill past capacity: the 9th Put spills half back to the pool.
	var bs []*Buf
	for i := 0; i < 9; i++ {
		bs = append(bs, pl.Get())
	}
	for _, b := range bs {
		c.Put(b)
	}
	if len(c.bufs) > 8 {
		t.Fatalf("cache overfilled: %d", len(c.bufs))
	}
	// Drain below empty: Get refills from the shared pool in batches.
	for i := 0; i < 16; i++ {
		b := c.Get()
		if b == nil || b.pool != pl {
			t.Fatalf("get %d: %v", i, b)
		}
		b.Free()
	}
	c.Flush()
	if len(c.bufs) != 0 {
		t.Fatalf("flush left %d buffers", len(c.bufs))
	}
}

func TestPoolCacheZeroValueBindsOnPut(t *testing.T) {
	pl := NewPool(512, 64)
	var c PoolCache
	c.Put(NewBuf(512, 64)) // unpooled: dropped, no bind
	if c.Pool() != nil {
		t.Fatal("unpooled Put bound the cache")
	}
	c.Put(pl.Get())
	if c.Pool() != pl {
		t.Fatal("first pooled Put did not bind the cache")
	}
	other := NewPool(512, 64)
	c.Put(other.Get()) // foreign: routed to its own pool, not cached
	if got := c.Get(); got.pool != pl {
		t.Fatal("foreign buffer surfaced from cache")
	}
}

// TestPoolCacheZeroAllocSteadyState guards the two-level allocator's hot
// path: a warm Get/Put cycle must not allocate.
func TestPoolCacheZeroAllocSteadyState(t *testing.T) {
	pl := NewPool(512, 64)
	c := pl.NewCache(8)
	for i := 0; i < 4; i++ {
		c.Put(pl.Get())
	}
	if avg := testing.AllocsPerRun(500, func() {
		b := c.Get()
		c.Put(b)
	}); avg != 0 {
		t.Fatalf("PoolCache Get/Put allocates %.1f/op", avg)
	}
}

// TestPoolBatchZeroAllocWarm guards the shared level: batched get/put
// against a populated free list must not allocate.
func TestPoolBatchZeroAllocWarm(t *testing.T) {
	pl := NewPool(512, 64)
	bs := make([]*Buf, 16)
	pl.GetBatch(bs) // populate (allocates the buffers once)
	pl.PutBatch(bs)
	if avg := testing.AllocsPerRun(500, func() {
		pl.GetBatch(bs)
		pl.PutBatch(bs)
	}); avg != 0 {
		t.Fatalf("Pool GetBatch/PutBatch allocates %.1f/op", avg)
	}
}

func TestClonePooledAllocatesWhenTooBig(t *testing.T) {
	// A jumbo source larger than the destination pool's buffers must be
	// cloned whole into a fresh allocation, never truncated.
	pl := NewPool(256, 32)
	src := NewBuf(4096, 128)
	big := make([]byte, 3000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	if err := src.SetBytes(big); err != nil {
		t.Fatal(err)
	}
	src.Meta.TEID = 42
	c := src.ClonePooled(pl)
	if c.pool != nil {
		t.Fatal("oversized clone claims to be pooled")
	}
	if !bytes.Equal(c.Bytes(), big) {
		t.Fatalf("clone truncated: %d of %d bytes", c.Len(), len(big))
	}
	if c.Meta.TEID != 42 {
		t.Fatal("metadata not cloned")
	}
	// The fitting case still draws from the pool.
	small := NewBuf(128, 16)
	small.SetBytes([]byte("fits"))
	d := small.ClonePooled(pl)
	if d.pool != pl || !bytes.Equal(d.Bytes(), []byte("fits")) {
		t.Fatalf("fitting clone: pool=%v bytes=%q", d.pool, d.Bytes())
	}
}

func TestRecvSliceSetRecvLen(t *testing.T) {
	b := NewBuf(256, 32)
	rs := b.RecvSlice()
	if len(rs) != 256-32 {
		t.Fatalf("RecvSlice len = %d, want %d", len(rs), 256-32)
	}
	// External writer (a vectorized socket read) fills the region.
	copy(rs, []byte("datagram"))
	if err := b.SetRecvLen(8); err != nil {
		t.Fatal(err)
	}
	if string(b.Bytes()) != "datagram" {
		t.Fatalf("Bytes = %q", b.Bytes())
	}
	if b.Headroom() != 32 {
		t.Fatalf("headroom = %d, want 32 (preserved for encap prepend)", b.Headroom())
	}
	if _, err := b.Prepend(32); err != nil {
		t.Fatalf("prepend into preserved headroom: %v", err)
	}
	if err := b.SetRecvLen(1 << 20); err == nil {
		t.Fatal("oversized SetRecvLen accepted")
	}
	if err := b.SetRecvLen(-1); err == nil {
		t.Fatal("negative SetRecvLen accepted")
	}
}

func TestPoolCacheGetBatchPutBatch(t *testing.T) {
	pl := NewPool(512, 64)
	c := pl.NewCache(16)
	bs := make([]*Buf, 12)
	c.GetBatch(bs)
	for i, b := range bs {
		if b == nil || b.Headroom() != 64 || b.Len() != 0 {
			t.Fatalf("buf %d: %v", i, b)
		}
	}
	seen := map[*Buf]bool{}
	for _, b := range bs {
		seen[b] = true
	}
	c.PutBatch(bs)
	// The cache holds at most its capacity; the rest spilled to the pool.
	got := make([]*Buf, 12)
	c.GetBatch(got)
	recycled := 0
	for _, b := range got {
		if seen[b] {
			recycled++
		}
	}
	if recycled == 0 {
		t.Fatal("no buffers recycled through the cache batch path")
	}
}

func TestPoolCacheGetBatchDrainsLocalFirst(t *testing.T) {
	pl := NewPool(512, 64)
	c := pl.NewCache(16)
	warm := c.Get()
	c.Put(warm)
	bs := make([]*Buf, 2)
	c.GetBatch(bs)
	if bs[0] != warm {
		t.Fatal("GetBatch did not reuse the locally cached buffer first")
	}
}
