package pkt

import "fmt"

// Flow is the inner 5-tuple of a user packet, used by the PCEF classifier
// and the demux stages. It is a comparable value type so it can key maps
// and be hashed without allocation.
type Flow struct {
	Src     uint32 // host order
	Dst     uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow {
	return Flow{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort, Proto: f.Proto}
}

// FastHash returns a 64-bit non-cryptographic hash of the flow. It is
// symmetric — a flow and its reverse hash identically — so both directions
// of a connection land on the same worker, mirroring gopacket's Flow
// contract for load balancing.
func (f Flow) FastHash() uint64 {
	// Order the endpoints so hash(A->B) == hash(B->A).
	a := uint64(f.Src)<<16 | uint64(f.SrcPort)
	b := uint64(f.Dst)<<16 | uint64(f.DstPort)
	if a > b {
		a, b = b, a
	}
	h := fnv64Offset
	h = fnvMix(h, a)
	h = fnvMix(h, b)
	h = fnvMix(h, uint64(f.Proto))
	return h
}

// Hash returns a direction-sensitive 64-bit hash of the flow, for exact
// per-direction classification tables.
func (f Flow) Hash() uint64 {
	h := fnv64Offset
	h = fnvMix(h, uint64(f.Src)<<16|uint64(f.SrcPort))
	h = fnvMix(h, uint64(f.Dst)<<16|uint64(f.DstPort))
	h = fnvMix(h, uint64(f.Proto))
	return h
}

// String implements fmt.Stringer.
func (f Flow) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d/%d", FormatIPv4(f.Src), f.SrcPort, FormatIPv4(f.Dst), f.DstPort, f.Proto)
}

const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnv64Prime
		v >>= 8
	}
	return h
}

// HashUint32 hashes a 32-bit key (TEID, IPv4 address) to 64 bits using a
// finalizer with good avalanche behaviour; used by the open-address state
// tables and by the demux.
func HashUint32(x uint32) uint64 {
	h := uint64(x)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// HashUint64 hashes a 64-bit key (IMSI) with the same finalizer.
func HashUint64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
