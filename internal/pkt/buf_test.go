package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBufPrependTrimRoundTrip(t *testing.T) {
	b := NewBuf(256, 64)
	if err := b.SetBytes([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	hdr, err := b.Prepend(4)
	if err != nil {
		t.Fatal(err)
	}
	copy(hdr, "GTPU")
	if got := string(b.Bytes()); got != "GTPUpayload" {
		t.Fatalf("after prepend: %q", got)
	}
	if err := b.TrimFront(4); err != nil {
		t.Fatal(err)
	}
	if got := string(b.Bytes()); got != "payload" {
		t.Fatalf("after trim: %q", got)
	}
	if b.Headroom() != 64 {
		t.Fatalf("headroom not restored: %d", b.Headroom())
	}
}

func TestBufPrependExhaustsHeadroom(t *testing.T) {
	b := NewBuf(64, 8)
	if _, err := b.Prepend(8); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Prepend(1); err != ErrNoHeadroom {
		t.Fatalf("want ErrNoHeadroom, got %v", err)
	}
}

func TestBufAppendTailroom(t *testing.T) {
	b := NewBuf(16, 4)
	if got := b.Tailroom(); got != 12 {
		t.Fatalf("tailroom = %d, want 12", got)
	}
	if _, err := b.Append(12); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(1); err != ErrNoTailroom {
		t.Fatalf("want ErrNoTailroom, got %v", err)
	}
}

func TestBufTrimBeyondLen(t *testing.T) {
	b := NewBuf(64, 8)
	b.SetBytes([]byte{1, 2, 3})
	if err := b.TrimFront(4); err != ErrTooShort {
		t.Fatalf("TrimFront: want ErrTooShort, got %v", err)
	}
	if err := b.TrimBack(4); err != ErrTooShort {
		t.Fatalf("TrimBack: want ErrTooShort, got %v", err)
	}
}

func TestBufSetBytesTooLarge(t *testing.T) {
	b := NewBuf(16, 8)
	if err := b.SetBytes(make([]byte, 9)); err != ErrNoTailroom {
		t.Fatalf("want ErrNoTailroom, got %v", err)
	}
}

func TestBufReset(t *testing.T) {
	b := NewBuf(64, 16)
	b.SetBytes([]byte("abc"))
	b.Meta.TEID = 7
	b.Reset(32)
	if b.Len() != 0 || b.Headroom() != 32 || b.Meta.TEID != 0 {
		t.Fatalf("reset: len=%d headroom=%d teid=%d", b.Len(), b.Headroom(), b.Meta.TEID)
	}
}

func TestBufClonePreservesContentAndMeta(t *testing.T) {
	b := NewBuf(128, 32)
	b.SetBytes([]byte("hello"))
	b.Meta.TEID = 42
	b.Meta.Uplink = true
	c := b.Clone()
	if !bytes.Equal(c.Bytes(), b.Bytes()) {
		t.Fatalf("clone bytes = %q, want %q", c.Bytes(), b.Bytes())
	}
	if c.Meta != b.Meta {
		t.Fatalf("clone meta = %+v, want %+v", c.Meta, b.Meta)
	}
	// Mutating the clone must not touch the original.
	c.Bytes()[0] = 'X'
	if b.Bytes()[0] != 'h' {
		t.Fatal("clone aliases original storage")
	}
}

func TestPoolRecyclesBuffers(t *testing.T) {
	p := NewPool(512, 64)
	b := p.Get()
	if b.Headroom() != 64 {
		t.Fatalf("headroom = %d", b.Headroom())
	}
	b.SetBytes([]byte("dirty"))
	b.Meta.TEID = 99
	b.Free()
	b2 := p.Get()
	if b2.Len() != 0 || b2.Meta.TEID != 0 || b2.Headroom() != 64 {
		t.Fatalf("recycled buffer not reset: len=%d teid=%d headroom=%d", b2.Len(), b2.Meta.TEID, b2.Headroom())
	}
}

func TestPoolCloneUsesPool(t *testing.T) {
	p := NewPool(256, 32)
	b := p.Get()
	b.SetBytes([]byte("x"))
	c := b.Clone()
	if c.pool != p {
		t.Fatal("clone of pooled buffer is not pooled")
	}
}

// Property: prepend(n) followed by trimFront(n) is an identity on the
// packet contents, for any payload and any n within headroom.
func TestBufPrependTrimIdentityProperty(t *testing.T) {
	f := func(payload []byte, n uint8) bool {
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		b := NewBuf(2048, 256)
		if err := b.SetBytes(payload); err != nil {
			return false
		}
		k := int(n) % 256
		if _, err := b.Prepend(k); err != nil {
			return false
		}
		if err := b.TrimFront(k); err != nil {
			return false
		}
		return bytes.Equal(b.Bytes(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPoolGetFree(b *testing.B) {
	p := NewPool(DefaultBufSize, DefaultHeadroom)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Get()
		buf.Free()
	}
}
