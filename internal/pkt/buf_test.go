package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBufPrependTrimRoundTrip(t *testing.T) {
	b := NewBuf(256, 64)
	if err := b.SetBytes([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	hdr, err := b.Prepend(4)
	if err != nil {
		t.Fatal(err)
	}
	copy(hdr, "GTPU")
	if got := string(b.Bytes()); got != "GTPUpayload" {
		t.Fatalf("after prepend: %q", got)
	}
	if err := b.TrimFront(4); err != nil {
		t.Fatal(err)
	}
	if got := string(b.Bytes()); got != "payload" {
		t.Fatalf("after trim: %q", got)
	}
	if b.Headroom() != 64 {
		t.Fatalf("headroom not restored: %d", b.Headroom())
	}
}

func TestBufPrependExhaustsHeadroom(t *testing.T) {
	b := NewBuf(64, 8)
	if _, err := b.Prepend(8); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Prepend(1); err != ErrNoHeadroom {
		t.Fatalf("want ErrNoHeadroom, got %v", err)
	}
}

func TestBufAppendTailroom(t *testing.T) {
	b := NewBuf(16, 4)
	if got := b.Tailroom(); got != 12 {
		t.Fatalf("tailroom = %d, want 12", got)
	}
	if _, err := b.Append(12); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append(1); err != ErrNoTailroom {
		t.Fatalf("want ErrNoTailroom, got %v", err)
	}
}

func TestBufTrimBeyondLen(t *testing.T) {
	b := NewBuf(64, 8)
	b.SetBytes([]byte{1, 2, 3})
	if err := b.TrimFront(4); err != ErrTooShort {
		t.Fatalf("TrimFront: want ErrTooShort, got %v", err)
	}
	if err := b.TrimBack(4); err != ErrTooShort {
		t.Fatalf("TrimBack: want ErrTooShort, got %v", err)
	}
}

func TestBufSetBytesTooLarge(t *testing.T) {
	b := NewBuf(16, 8)
	if err := b.SetBytes(make([]byte, 9)); err != ErrNoTailroom {
		t.Fatalf("want ErrNoTailroom, got %v", err)
	}
}

func TestBufReset(t *testing.T) {
	b := NewBuf(64, 16)
	b.SetBytes([]byte("abc"))
	b.Meta.TEID = 7
	b.Reset(32)
	if b.Len() != 0 || b.Headroom() != 32 || b.Meta.TEID != 0 {
		t.Fatalf("reset: len=%d headroom=%d teid=%d", b.Len(), b.Headroom(), b.Meta.TEID)
	}
}

func TestBufClonePreservesContentAndMeta(t *testing.T) {
	b := NewBuf(128, 32)
	b.SetBytes([]byte("hello"))
	b.Meta.TEID = 42
	b.Meta.Uplink = true
	c := b.Clone()
	if !bytes.Equal(c.Bytes(), b.Bytes()) {
		t.Fatalf("clone bytes = %q, want %q", c.Bytes(), b.Bytes())
	}
	if c.Meta != b.Meta {
		t.Fatalf("clone meta = %+v, want %+v", c.Meta, b.Meta)
	}
	// Mutating the clone must not touch the original.
	c.Bytes()[0] = 'X'
	if b.Bytes()[0] != 'h' {
		t.Fatal("clone aliases original storage")
	}
}

// TestCloneRevalidatesOuterParse pins the clone-time metadata audit: an
// OuterParsed/OuterLen claim that no longer describes the packet bytes
// (the source was mutated, or a stage re-armed stale metadata) must not
// reach the copy — a metadata-trusting decap would TrimFront payload
// bytes off it. A claim whose structural invariants still hold survives
// the clone untouched.
func TestCloneRevalidatesOuterParse(t *testing.T) {
	mk := func() *Buf {
		b := NewBuf(256, 64)
		b.SetBytes(make([]byte, 80))
		p := b.Bytes()
		p[0] = 0x45     // IPv4, IHL 5 — the prefix the demux validated
		p[9] = ProtoUDP // protocol
		b.Meta.TEID = 7
		b.Meta.OuterParsed = true
		b.Meta.OuterLen = 36
		return b
	}
	// Valid claim: preserved on both clone paths.
	if c := mk().Clone(); !c.Meta.OuterParsed || c.Meta.OuterLen != 36 || c.Meta.TEID != 7 {
		t.Fatalf("valid outer parse not preserved by Clone: %+v", c.Meta)
	}
	if c := mk().ClonePooled(NewPool(512, 16)); !c.Meta.OuterParsed || c.Meta.OuterLen != 36 {
		t.Fatalf("valid outer parse not preserved by ClonePooled: %+v", c.Meta)
	}
	// Front mutations invalidate the recorded parse at the source.
	b := mk()
	if err := b.TrimFront(4); err != nil {
		t.Fatal(err)
	}
	if b.Meta.OuterParsed {
		t.Fatal("TrimFront kept the recorded outer parse")
	}
	b = mk()
	if _, err := b.Prepend(4); err != nil {
		t.Fatal(err)
	}
	if b.Meta.OuterParsed {
		t.Fatal("Prepend kept the recorded outer parse")
	}
	// A stale claim re-armed on mutated contents (what a stage holding
	// old metadata would do) is cleared by the clone audit: after the
	// trim the claimed envelope no longer fits the remaining bytes.
	b = mk()
	if err := b.TrimFront(60); err != nil {
		t.Fatal(err)
	}
	b.Meta.OuterParsed, b.Meta.OuterLen = true, 36
	if c := b.Clone(); c.Meta.OuterParsed || c.Meta.OuterLen != 0 {
		t.Fatalf("stale outer parse survived Clone: %+v", c.Meta)
	}
	if c := b.ClonePooled(NewPool(512, 16)); c.Meta.OuterParsed || c.Meta.OuterLen != 0 {
		t.Fatalf("stale outer parse survived ClonePooled: %+v", c.Meta)
	}
	// The unrelated metadata still travels.
	if c := b.Clone(); c.Meta.TEID != 7 {
		t.Fatalf("TEID lost in re-validation: %+v", c.Meta)
	}
}

func TestPoolRecyclesBuffers(t *testing.T) {
	p := NewPool(512, 64)
	b := p.Get()
	if b.Headroom() != 64 {
		t.Fatalf("headroom = %d", b.Headroom())
	}
	b.SetBytes([]byte("dirty"))
	b.Meta.TEID = 99
	b.Free()
	b2 := p.Get()
	if b2.Len() != 0 || b2.Meta.TEID != 0 || b2.Headroom() != 64 {
		t.Fatalf("recycled buffer not reset: len=%d teid=%d headroom=%d", b2.Len(), b2.Meta.TEID, b2.Headroom())
	}
}

func TestPoolCloneUsesPool(t *testing.T) {
	p := NewPool(256, 32)
	b := p.Get()
	b.SetBytes([]byte("x"))
	c := b.Clone()
	if c.pool != p {
		t.Fatal("clone of pooled buffer is not pooled")
	}
}

// Property: prepend(n) followed by trimFront(n) is an identity on the
// packet contents, for any payload and any n within headroom.
func TestBufPrependTrimIdentityProperty(t *testing.T) {
	f := func(payload []byte, n uint8) bool {
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		b := NewBuf(2048, 256)
		if err := b.SetBytes(payload); err != nil {
			return false
		}
		k := int(n) % 256
		if _, err := b.Prepend(k); err != nil {
			return false
		}
		if err := b.TrimFront(k); err != nil {
			return false
		}
		return bytes.Equal(b.Bytes(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPoolGetFree(b *testing.B) {
	p := NewPool(DefaultBufSize, DefaultHeadroom)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Get()
		buf.Free()
	}
}
