package pkt

import (
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01},
		Src:       MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02},
		EtherType: EtherTypeIPv4,
	}
	var b [EthernetHeaderLen]byte
	if err := e.SerializeTo(b[:]); err != nil {
		t.Fatal(err)
	}
	var d Ethernet
	if err := d.DecodeFromBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Fatalf("round trip: got %+v want %+v", d, e)
	}
}

func TestEthernetShort(t *testing.T) {
	var d Ethernet
	if err := d.DecodeFromBytes(make([]byte, 13)); err != ErrShortPacket {
		t.Fatalf("want ErrShortPacket, got %v", err)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := IPv4{
		TOS:      0,
		Length:   40,
		ID:       0x1234,
		Flags:    IPv4DontFragment,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      IPv4Addr(10, 0, 0, 1),
		Dst:      IPv4Addr(192, 168, 1, 2),
	}
	var b [IPv4HeaderLen]byte
	if err := ip.SerializeTo(b[:]); err != nil {
		t.Fatal(err)
	}
	if !VerifyChecksum(b[:]) {
		t.Fatal("serialized header fails checksum verification")
	}
	var d IPv4
	if err := d.DecodeFromBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.Protocol != ProtoUDP || d.Length != 40 ||
		d.Flags != IPv4DontFragment || d.TTL != 64 || d.ID != 0x1234 {
		t.Fatalf("round trip mismatch: %+v", d)
	}
	if d.HeaderLen() != IPv4HeaderLen {
		t.Fatalf("header len = %d", d.HeaderLen())
	}
}

func TestIPv4RejectsBadVersion(t *testing.T) {
	b := make([]byte, IPv4HeaderLen)
	b[0] = 0x65 // version 6
	var d IPv4
	if err := d.DecodeFromBytes(b); err != ErrBadVersion {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestIPv4RejectsBadIHL(t *testing.T) {
	b := make([]byte, IPv4HeaderLen)
	b[0] = 0x44 // version 4, IHL 4 (<5)
	var d IPv4
	if err := d.DecodeFromBytes(b); err != ErrBadHeaderLen {
		t.Fatalf("want ErrBadHeaderLen, got %v", err)
	}
	b[0] = 0x4f // IHL 15 => 60 bytes needed, only 20 given
	if err := d.DecodeFromBytes(b); err != ErrBadHeaderLen {
		t.Fatalf("want ErrBadHeaderLen for truncated options, got %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 2152, DstPort: 2152, Length: 100, Checksum: 0}
	var b [UDPHeaderLen]byte
	if err := u.SerializeTo(b[:]); err != nil {
		t.Fatal(err)
	}
	var d UDP
	if err := d.DecodeFromBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	if d != u {
		t.Fatalf("round trip: got %+v want %+v", d, u)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tc := TCP{SrcPort: 443, DstPort: 51000, Seq: 1000, Ack: 2000, Flags: TCPSyn | TCPAck, Window: 65535}
	var b [TCPHeaderLen]byte
	if err := tc.SerializeTo(b[:]); err != nil {
		t.Fatal(err)
	}
	var d TCP
	if err := d.DecodeFromBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != tc.SrcPort || d.DstPort != tc.DstPort || d.Seq != tc.Seq ||
		d.Ack != tc.Ack || d.Flags != tc.Flags || d.Window != tc.Window || d.DataOff != 5 {
		t.Fatalf("round trip mismatch: %+v", d)
	}
}

func TestIPv4AddrFormat(t *testing.T) {
	ip := IPv4Addr(172, 16, 254, 1)
	if got := FormatIPv4(ip); got != "172.16.254.1" {
		t.Fatalf("FormatIPv4 = %q", got)
	}
}

// Property: IPv4 serialize→decode is the identity on the serializable
// fields, and the emitted header always verifies.
func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos uint8, length, id uint16, ttl, proto uint8, src, dst uint32) bool {
		ip := IPv4{TOS: tos, Length: length, ID: id, TTL: ttl, Protocol: proto, Src: src, Dst: dst}
		var b [IPv4HeaderLen]byte
		if err := ip.SerializeTo(b[:]); err != nil {
			return false
		}
		if !VerifyChecksum(b[:]) {
			return false
		}
		var d IPv4
		if err := d.DecodeFromBytes(b[:]); err != nil {
			return false
		}
		return d.TOS == tos && d.Length == length && d.ID == id && d.TTL == ttl &&
			d.Protocol == proto && d.Src == src && d.Dst == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
