package pkt

import "encoding/binary"

// Checksum computes the RFC 1071 Internet checksum over b, returning the
// value in host order ready for binary.BigEndian.PutUint16. A zero-filled
// checksum field must already be in place.
func Checksum(b []byte) uint16 {
	return finishChecksum(sum16(b, 0))
}

// PseudoHeaderChecksum computes the transport checksum (UDP or TCP) over the
// IPv4 pseudo-header plus the transport segment. proto is the IP protocol
// number; src and dst are host-order addresses; seg is the transport header
// plus payload with its checksum field zeroed.
func PseudoHeaderChecksum(proto uint8, src, dst uint32, seg []byte) uint16 {
	var ph [12]byte
	binary.BigEndian.PutUint32(ph[0:4], src)
	binary.BigEndian.PutUint32(ph[4:8], dst)
	ph[8] = 0
	ph[9] = proto
	binary.BigEndian.PutUint16(ph[10:12], uint16(len(seg)))
	s := sum16(ph[:], 0)
	s = sum16(seg, s)
	return finishChecksum(s)
}

// ChecksumPartial accumulates the 16-bit big-endian words of b into acc
// without folding or complementing. Precomputed header templates keep the
// partial sum of their constant words and finish it per packet with
// FoldChecksum after adding the variable words.
func ChecksumPartial(b []byte, acc uint32) uint32 {
	return sum16(b, acc)
}

// FoldChecksum folds an unfolded partial sum to 16 bits and complements
// it, producing the final Internet checksum.
func FoldChecksum(s uint32) uint16 {
	return finishChecksum(s)
}

// FoldChecksumUDP folds an unfolded partial sum like FoldChecksum and
// applies the RFC 768 transmission rule for UDP: an all-zero checksum
// field on the wire means "checksum disabled", so a checksum that
// computes to 0x0000 must be transmitted as its one's-complement
// equivalent 0xFFFF. Incremental encap paths that wrote the folded sum
// directly would emit the "disabled" sentinel roughly once per 65536
// payloads and have the packet silently unprotected.
func FoldChecksumUDP(s uint32) uint16 {
	c := finishChecksum(s)
	if c == 0 {
		return 0xffff
	}
	return c
}

// ChecksumUpdate16 computes the incremental checksum update of RFC 1624
// (eq. 3): given a header whose current checksum is hc, return the new
// checksum after one 16-bit word changes from old to new, without
// re-summing the header. HC' = ~(~HC + ~m + m').
func ChecksumUpdate16(hc, old, new uint16) uint16 {
	s := uint32(^hc) & 0xffff
	s += uint32(^old) & 0xffff
	s += uint32(new)
	return finishChecksum(s)
}

// sum16 accumulates 16-bit big-endian words of b into acc without folding.
func sum16(b []byte, acc uint32) uint32 {
	n := len(b)
	i := 0
	for ; i+1 < n; i += 2 {
		acc += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if i < n {
		acc += uint32(b[i]) << 8
	}
	return acc
}

func finishChecksum(s uint32) uint16 {
	for s>>16 != 0 {
		s = (s & 0xffff) + s>>16
	}
	return ^uint16(s)
}

// VerifyChecksum reports whether b (with its checksum field in place)
// checksums to zero, i.e. is valid.
func VerifyChecksum(b []byte) bool {
	return finishChecksum(sum16(b, 0)) == 0
}
