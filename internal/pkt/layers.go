package pkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Layer header lengths in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20 // without options
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20 // without options
)

// EtherType values used by the EPC data plane.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoSCTP uint8 = 132
)

// Decode errors.
var (
	ErrShortPacket   = errors.New("pkt: packet too short for layer")
	ErrBadVersion    = errors.New("pkt: unexpected IP version")
	ErrBadHeaderLen  = errors.New("pkt: bad header length field")
	ErrNotFragmented = errors.New("pkt: not a first fragment")
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String implements fmt.Stringer.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is a decoded Ethernet II header. Decode into a preallocated
// value; no allocation is performed.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// DecodeFromBytes parses an Ethernet header from the front of data.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return ErrShortPacket
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return nil
}

// SerializeTo writes the header into b, which must be at least
// EthernetHeaderLen bytes.
func (e *Ethernet) SerializeTo(b []byte) error {
	if len(b) < EthernetHeaderLen {
		return ErrShortPacket
	}
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
	return nil
}

// IPv4 is a decoded IPv4 header. Addresses are kept as uint32 in host byte
// order ("a.b.c.d" == a<<24|b<<16|c<<8|d) so they can key hash tables
// without allocation.
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	Length   uint16 // total length including header
	ID       uint16
	Flags    uint8  // top 3 bits of the fragment field
	FragOff  uint16 // fragment offset in 8-byte units
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      uint32
	Dst      uint32
}

// IPv4Flags.
const (
	IPv4DontFragment  uint8 = 0x2
	IPv4MoreFragments uint8 = 0x1
)

// DecodeFromBytes parses an IPv4 header from the front of data.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return ErrShortPacket
	}
	vihl := data[0]
	if vihl>>4 != 4 {
		return ErrBadVersion
	}
	ip.IHL = vihl & 0x0f
	if int(ip.IHL)*4 < IPv4HeaderLen || len(data) < int(ip.IHL)*4 {
		return ErrBadHeaderLen
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	frag := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(frag >> 13)
	ip.FragOff = frag & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = binary.BigEndian.Uint32(data[12:16])
	ip.Dst = binary.BigEndian.Uint32(data[16:20])
	return nil
}

// HeaderLen returns the header length in bytes.
func (ip *IPv4) HeaderLen() int { return int(ip.IHL) * 4 }

// SerializeTo writes a 20-byte IPv4 header (no options) into b and computes
// its checksum. Length must be set by the caller.
func (ip *IPv4) SerializeTo(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return ErrShortPacket
	}
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], ip.Length)
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b[8] = ip.TTL
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:16], ip.Src)
	binary.BigEndian.PutUint32(b[16:20], ip.Dst)
	cs := Checksum(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], cs)
	ip.Checksum = cs
	return nil
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// DecodeFromBytes parses a UDP header from the front of data.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return ErrShortPacket
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return nil
}

// SerializeTo writes the UDP header into b. The checksum is written as
// given (0 = none), since the EPC fast path skips UDP checksumming for
// GTP-U the way hardware offload would.
func (u *UDP) SerializeTo(b []byte) error {
	if len(b) < UDPHeaderLen {
		return ErrShortPacket
	}
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], u.Length)
	binary.BigEndian.PutUint16(b[6:8], u.Checksum)
	return nil
}

// TCP is a decoded TCP header (the fields the PCEF classifier needs).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	DataOff uint8 // header length in 32-bit words
	Flags   uint8
	Window  uint16
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// DecodeFromBytes parses a TCP header from the front of data.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return ErrShortPacket
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOff = data[12] >> 4
	if int(t.DataOff)*4 < TCPHeaderLen {
		return ErrBadHeaderLen
	}
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	return nil
}

// SerializeTo writes a 20-byte TCP header (no options) into b. The checksum
// field is left zero; the traffic generator does not need valid TCP
// checksums and real deployments offload them.
func (t *TCP) SerializeTo(b []byte) error {
	if len(b) < TCPHeaderLen {
		return ErrShortPacket
	}
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], 0)
	binary.BigEndian.PutUint16(b[18:20], 0)
	return nil
}

// IPv4Addr assembles a host-order uint32 address from dotted-quad octets.
func IPv4Addr(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// FormatIPv4 renders a host-order address in dotted-quad form.
func FormatIPv4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
