// Package pkt provides the packet substrate for PEPC: mbuf-style buffers
// with reserved headroom so tunnel encapsulation can prepend headers without
// copying, pooled allocation so the steady-state data path is allocation
// free, and zero-copy codecs for the protocol layers the EPC data plane
// touches (Ethernet, IPv4, UDP, TCP and, in package gtp, GTP-U).
//
// The decode API follows the gopacket DecodingLayer style: callers hold
// preallocated layer structs and call DecodeFromBytes on them, so decoding a
// packet performs no allocation. Serialization prepends, mirroring
// gopacket's SerializeTo contract.
package pkt

import (
	"errors"
	"fmt"
	"sync"
)

// Buffer geometry. DefaultHeadroom is sized to fit the largest
// encapsulation the EPC data plane prepends: outer Ethernet (14) + IPv4 (20)
// + UDP (8) + GTP-U (12 with options) plus slack.
const (
	DefaultBufSize  = 2048
	DefaultHeadroom = 128
)

// Common errors returned by buffer operations.
var (
	ErrNoHeadroom = errors.New("pkt: insufficient headroom")
	ErrNoTailroom = errors.New("pkt: insufficient tailroom")
	ErrTooShort   = errors.New("pkt: buffer too short")
)

// Buf is an mbuf-style packet buffer. The packet occupies data[off:off+len].
// Prepending consumes headroom (bytes before off); appending consumes
// tailroom (bytes after off+len). Buf is not safe for concurrent use; the
// single-writer discipline of the PEPC data path guarantees exclusive
// ownership while a packet is being processed.
type Buf struct {
	data []byte
	off  int
	len  int

	// Meta carries per-packet metadata set by earlier pipeline stages so
	// later stages need not re-parse. It is reset when the buffer returns
	// to its pool.
	Meta Metadata

	pool *Pool
}

// Metadata is scratch state attached to a packet as it moves through a
// pipeline: the owning user, the parsed 5-tuple, tunnel id and timestamps.
type Metadata struct {
	// TEID is the GTP-U tunnel endpoint id for uplink traffic, or the
	// tunnel selected for downlink encapsulation.
	TEID uint32
	// UEIP is the user device's IP address (host byte order) used to map
	// downlink traffic to a user.
	UEIP uint32
	// Flow is the inner 5-tuple, filled by the parse stage for the PCEF.
	Flow Flow
	// TSNanos is the generator or RX timestamp used for latency
	// measurement, in nanoseconds of an arbitrary monotonic epoch.
	TSNanos int64
	// Uplink records the traffic direction chosen by the demux stage.
	Uplink bool
	// Paged marks a downlink packet already parked once for an idle
	// user; a second pass while still idle drops it.
	Paged bool
}

// NewBuf allocates an unpooled buffer with the given capacity and headroom
// reserved. It is intended for tests and slow paths; the data path should
// use a Pool.
func NewBuf(size, headroom int) *Buf {
	if size <= 0 {
		size = DefaultBufSize
	}
	if headroom < 0 || headroom > size {
		headroom = 0
	}
	return &Buf{data: make([]byte, size), off: headroom}
}

// Bytes returns the current packet contents. The slice aliases the buffer:
// it is valid until the next Prepend/Append/Reset/Free.
func (b *Buf) Bytes() []byte { return b.data[b.off : b.off+b.len] }

// Len returns the packet length in bytes.
func (b *Buf) Len() int { return b.len }

// Headroom returns the number of bytes available for Prepend.
func (b *Buf) Headroom() int { return b.off }

// Tailroom returns the number of bytes available for Append.
func (b *Buf) Tailroom() int { return len(b.data) - b.off - b.len }

// Reset empties the packet and restores the requested headroom.
func (b *Buf) Reset(headroom int) {
	if headroom < 0 || headroom > len(b.data) {
		headroom = 0
	}
	b.off = headroom
	b.len = 0
	b.Meta = Metadata{}
}

// SetBytes replaces the packet contents with p, preserving headroom.
func (b *Buf) SetBytes(p []byte) error {
	if len(p) > len(b.data)-b.off {
		return ErrNoTailroom
	}
	copy(b.data[b.off:], p)
	b.len = len(p)
	return nil
}

// Prepend grows the packet by n bytes at the front and returns the new
// leading bytes for the caller to fill in. It never copies.
func (b *Buf) Prepend(n int) ([]byte, error) {
	if n > b.off {
		return nil, ErrNoHeadroom
	}
	b.off -= n
	b.len += n
	return b.data[b.off : b.off+n], nil
}

// Append grows the packet by n bytes at the back and returns the new
// trailing bytes for the caller to fill in.
func (b *Buf) Append(n int) ([]byte, error) {
	if n > b.Tailroom() {
		return nil, ErrNoTailroom
	}
	p := b.data[b.off+b.len : b.off+b.len+n]
	b.len += n
	return p, nil
}

// TrimFront removes n bytes from the front of the packet (decapsulation).
// The removed bytes become headroom, so a later Prepend can reuse them.
func (b *Buf) TrimFront(n int) error {
	if n > b.len {
		return ErrTooShort
	}
	b.off += n
	b.len -= n
	return nil
}

// TrimBack removes n bytes from the back of the packet.
func (b *Buf) TrimBack(n int) error {
	if n > b.len {
		return ErrTooShort
	}
	b.len -= n
	return nil
}

// Clone copies the packet (contents and metadata) into a new buffer drawn
// from the same pool when pooled, or freshly allocated otherwise.
func (b *Buf) Clone() *Buf {
	var c *Buf
	if b.pool != nil {
		c = b.pool.Get()
	} else {
		c = NewBuf(len(b.data), b.off)
	}
	c.off = b.off
	c.len = b.len
	copy(c.data[c.off:c.off+c.len], b.Bytes())
	c.Meta = b.Meta
	return c
}

// Free returns the buffer to its pool. Unpooled buffers are left for the
// garbage collector. Using a Buf after Free is a bug.
func (b *Buf) Free() {
	if b.pool != nil {
		b.pool.put(b)
	}
}

// String implements fmt.Stringer for debugging.
func (b *Buf) String() string {
	return fmt.Sprintf("Buf{len=%d headroom=%d tailroom=%d}", b.len, b.Headroom(), b.Tailroom())
}

// Pool recycles packet buffers so the data path performs no steady-state
// allocation. It is safe for concurrent use.
type Pool struct {
	size     int
	headroom int
	p        sync.Pool
}

// NewPool returns a pool of buffers with the given capacity and reserved
// headroom. Zero values select the package defaults.
func NewPool(size, headroom int) *Pool {
	if size <= 0 {
		size = DefaultBufSize
	}
	if headroom < 0 {
		headroom = DefaultHeadroom
	}
	pl := &Pool{size: size, headroom: headroom}
	pl.p.New = func() any {
		b := NewBuf(pl.size, pl.headroom)
		b.pool = pl
		return b
	}
	return pl
}

// Get returns an empty buffer with the pool's headroom reserved.
func (pl *Pool) Get() *Buf {
	b := pl.p.Get().(*Buf)
	b.Reset(pl.headroom)
	return b
}

func (pl *Pool) put(b *Buf) { pl.p.Put(b) }
