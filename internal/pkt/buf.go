// Package pkt provides the packet substrate for PEPC: mbuf-style buffers
// with reserved headroom so tunnel encapsulation can prepend headers without
// copying, pooled allocation so the steady-state data path is allocation
// free, and zero-copy codecs for the protocol layers the EPC data plane
// touches (Ethernet, IPv4, UDP, TCP and, in package gtp, GTP-U).
//
// The decode API follows the gopacket DecodingLayer style: callers hold
// preallocated layer structs and call DecodeFromBytes on them, so decoding a
// packet performs no allocation. Serialization prepends, mirroring
// gopacket's SerializeTo contract.
package pkt

import (
	"errors"
	"fmt"
	"sync"

	"pepc/internal/ring"
)

// Buffer geometry. DefaultHeadroom is sized to fit the largest
// encapsulation the EPC data plane prepends: outer Ethernet (14) + IPv4 (20)
// + UDP (8) + GTP-U (12 with options) plus slack.
const (
	DefaultBufSize  = 2048
	DefaultHeadroom = 128
)

// Common errors returned by buffer operations.
var (
	ErrNoHeadroom = errors.New("pkt: insufficient headroom")
	ErrNoTailroom = errors.New("pkt: insufficient tailroom")
	ErrTooShort   = errors.New("pkt: buffer too short")
)

// Buf is an mbuf-style packet buffer. The packet occupies data[off:off+len].
// Prepending consumes headroom (bytes before off); appending consumes
// tailroom (bytes after off+len). Buf is not safe for concurrent use; the
// single-writer discipline of the PEPC data path guarantees exclusive
// ownership while a packet is being processed.
type Buf struct {
	data []byte
	off  int
	len  int

	// Meta carries per-packet metadata set by earlier pipeline stages so
	// later stages need not re-parse. It is reset when the buffer returns
	// to its pool.
	Meta Metadata

	pool *Pool
}

// Metadata is scratch state attached to a packet as it moves through a
// pipeline: the owning user, the parsed 5-tuple, tunnel id and timestamps.
type Metadata struct {
	// TEID is the GTP-U tunnel endpoint id for uplink traffic, or the
	// tunnel selected for downlink encapsulation.
	TEID uint32
	// UEIP is the user device's IP address (host byte order) used to map
	// downlink traffic to a user.
	UEIP uint32
	// Flow is the inner 5-tuple, filled by the parse stage for the PCEF.
	Flow Flow
	// TSNanos is the generator or RX timestamp used for latency
	// measurement, in nanoseconds of an arbitrary monotonic epoch.
	TSNanos int64
	// OuterLen is the byte count of the validated outer IPv4+UDP+GTP-U
	// envelope, recorded by the demux's single outer parse (gtp.ParseOuter).
	// Meaningful only while OuterParsed is set.
	OuterLen uint16
	// Uplink records the traffic direction chosen by the demux stage.
	Uplink bool
	// OuterParsed marks TEID and OuterLen as carrying a validated outer
	// parse, letting the slice decapsulate with a bounds-checked TrimFront
	// instead of re-walking the outer headers. Cleared by the decap.
	OuterParsed bool
	// FlowParsed marks Flow as filled by an earlier stage (the downlink
	// demux parses the inner header to steer by UE address), so the slice
	// parse stage can skip its own header walk.
	FlowParsed bool
	// Paged marks a downlink packet already parked once for an idle
	// user; a second pass while still idle drops it.
	Paged bool
}

// NewBuf allocates an unpooled buffer with the given capacity and headroom
// reserved. It is intended for tests and slow paths; the data path should
// use a Pool.
func NewBuf(size, headroom int) *Buf {
	if size <= 0 {
		size = DefaultBufSize
	}
	if headroom < 0 || headroom > size {
		headroom = 0
	}
	return &Buf{data: make([]byte, size), off: headroom}
}

// Bytes returns the current packet contents. The slice aliases the buffer:
// it is valid until the next Prepend/Append/Reset/Free.
func (b *Buf) Bytes() []byte { return b.data[b.off : b.off+b.len] }

// Len returns the packet length in bytes.
func (b *Buf) Len() int { return b.len }

// Headroom returns the number of bytes available for Prepend.
func (b *Buf) Headroom() int { return b.off }

// Tailroom returns the number of bytes available for Append.
func (b *Buf) Tailroom() int { return len(b.data) - b.off - b.len }

// Reset empties the packet and restores the requested headroom.
func (b *Buf) Reset(headroom int) {
	if headroom < 0 || headroom > len(b.data) {
		headroom = 0
	}
	b.off = headroom
	b.len = 0
	b.Meta = Metadata{}
}

// SetBytes replaces the packet contents with p, preserving headroom.
func (b *Buf) SetBytes(p []byte) error {
	if len(p) > len(b.data)-b.off {
		return ErrNoTailroom
	}
	copy(b.data[b.off:], p)
	b.len = len(p)
	return nil
}

// RecvSlice returns the buffer's writable region from the current packet
// offset to the end of the buffer — the iovec a vectorized socket read
// scatters a datagram into. Headroom before the offset stays reserved, so
// a packet received this way can still take the zero-copy encap prepend.
// Pair with SetRecvLen once the external writer reports the byte count.
func (b *Buf) RecvSlice() []byte { return b.data[b.off:] }

// SetRecvLen records that an external writer (a batched socket read)
// filled the first n bytes of RecvSlice, making them the packet contents.
func (b *Buf) SetRecvLen(n int) error {
	if n < 0 || n > len(b.data)-b.off {
		return ErrNoTailroom
	}
	b.len = n
	return nil
}

// Prepend grows the packet by n bytes at the front and returns the new
// leading bytes for the caller to fill in. It never copies. A recorded
// outer parse described the old front, so the claim is dropped.
func (b *Buf) Prepend(n int) ([]byte, error) {
	if n > b.off {
		return nil, ErrNoHeadroom
	}
	b.off -= n
	b.len += n
	b.Meta.OuterParsed = false
	return b.data[b.off : b.off+n], nil
}

// Append grows the packet by n bytes at the back and returns the new
// trailing bytes for the caller to fill in.
func (b *Buf) Append(n int) ([]byte, error) {
	if n > b.Tailroom() {
		return nil, ErrNoTailroom
	}
	p := b.data[b.off+b.len : b.off+b.len+n]
	b.len += n
	return p, nil
}

// TrimFront removes n bytes from the front of the packet (decapsulation).
// The removed bytes become headroom, so a later Prepend can reuse them.
// A recorded outer parse described the pre-trim front, so the claim is
// dropped; the decap that consumes the parse reads the metadata before
// trimming.
func (b *Buf) TrimFront(n int) error {
	if n > b.len {
		return ErrTooShort
	}
	b.off += n
	b.len -= n
	b.Meta.OuterParsed = false
	return nil
}

// TrimBack removes n bytes from the back of the packet.
func (b *Buf) TrimBack(n int) error {
	if n > b.len {
		return ErrTooShort
	}
	b.len -= n
	return nil
}

// Clone copies the packet (contents and metadata) into a new buffer drawn
// from the same pool when pooled, or freshly allocated otherwise. When the
// pooled buffer cannot hold the packet at its offset, an unpooled buffer
// of sufficient size is allocated instead of truncating.
func (b *Buf) Clone() *Buf {
	if b.pool != nil {
		return b.clonePooled(b.pool)
	}
	c := NewBuf(len(b.data), b.off)
	c.off = b.off
	c.len = b.len
	copy(c.data[c.off:c.off+c.len], b.Bytes())
	c.copyMetaFrom(b)
	return c
}

// copyMetaFrom copies b's metadata into c, re-validating the claim that
// is only meaningful relative to the packet bytes: Meta.OuterParsed
// promises the first OuterLen bytes are a demux-validated IPv4+UDP+GTP-U
// envelope of the whole packet. A clone taken after the source mutated
// (or a stage re-armed stale metadata) must not carry that promise into
// a copy it no longer describes — a metadata-trusting decap would
// TrimFront payload bytes off it. The audit re-checks the structural
// invariants visible at this layer: the claimed envelope fits the
// contents, leads with an IPv4 header whose options stay inside the
// claim, and carries UDP. Claims that fail are cleared, sending the
// copy down the decap's full re-parse path instead.
func (c *Buf) copyMetaFrom(b *Buf) {
	c.Meta = b.Meta
	if !c.Meta.OuterParsed {
		return
	}
	n := int(c.Meta.OuterLen)
	p := c.Bytes()
	if n < IPv4HeaderLen+UDPHeaderLen || n > len(p) ||
		p[0]>>4 != 4 || int(p[0]&0x0f)*4+UDPHeaderLen > n || p[9] != ProtoUDP {
		c.Meta.OuterParsed = false
		c.Meta.OuterLen = 0
	}
}

// ClonePooled copies the packet into a buffer drawn from pl — the
// cross-pool clone migration buffering uses. A source larger than pl's
// buffers (e.g. an unpooled jumbo buffer) is cloned into a fresh unpooled
// allocation rather than silently truncated.
func (b *Buf) ClonePooled(pl *Pool) *Buf {
	return b.clonePooled(pl)
}

func (b *Buf) clonePooled(pl *Pool) *Buf {
	c := pl.Get()
	if b.off+b.len > len(c.data) {
		// The pooled buffer cannot hold the packet at its offset: return
		// it and allocate an exact-fit unpooled buffer.
		c.Free()
		c = NewBuf(b.off+b.len, b.off)
	}
	c.off = b.off
	c.len = b.len
	copy(c.data[c.off:c.off+c.len], b.Bytes())
	c.copyMetaFrom(b)
	return c
}

// Free returns the buffer to its pool. Unpooled buffers are left for the
// garbage collector. Using a Buf after Free is a bug.
func (b *Buf) Free() {
	if b.pool != nil {
		b.pool.put(b)
	}
}

// String implements fmt.Stringer for debugging.
func (b *Buf) String() string {
	return fmt.Sprintf("Buf{len=%d headroom=%d tailroom=%d}", b.len, b.Headroom(), b.Tailroom())
}

// PoolFreeListCap bounds the shared free list of a Pool in buffers.
// Frees beyond it fall to the garbage collector, so a pool never retains
// more than PoolFreeListCap × size bytes.
const PoolFreeListCap = 1 << 12

// DefaultCacheSize is the per-worker PoolCache capacity in buffers; the
// refill/spill quantum is half of it.
const DefaultCacheSize = 64

// Pool recycles packet buffers so the data path performs no steady-state
// allocation. It is the shared level of an mbuf-style two-level allocator
// (DPDK mempool shape): a bounded MPSC-ring free list that any thread may
// free into lock-free, with a mutex serializing the (single-consumer)
// dequeue side. Hot paths should front it with a per-worker PoolCache so
// a refill or spill touches the shared list once per batch instead of
// once per packet. Unlike the sync.Pool it replaces, the free list
// survives garbage collections and Get returns a *Buf with no interface
// conversion.
type Pool struct {
	size     int
	headroom int

	// free is the shared free list. Producers (Buf.Free, PutBatch,
	// PoolCache spills) enqueue lock-free from any thread; mu serializes
	// consumers so the MPSC ring's single-consumer contract holds.
	free *ring.MPSC[*Buf]
	mu   sync.Mutex
}

// NewPool returns a pool of buffers with the given capacity and reserved
// headroom. Zero values select the package defaults.
func NewPool(size, headroom int) *Pool {
	if size <= 0 {
		size = DefaultBufSize
	}
	if headroom < 0 {
		headroom = DefaultHeadroom
	}
	return &Pool{
		size:     size,
		headroom: headroom,
		free:     ring.MustMPSC[*Buf](PoolFreeListCap),
	}
}

// BufSize returns the pool's buffer capacity in bytes.
func (pl *Pool) BufSize() int { return pl.size }

func (pl *Pool) newBuf() *Buf {
	b := NewBuf(pl.size, pl.headroom)
	b.pool = pl
	return b
}

// Get returns an empty buffer with the pool's headroom reserved.
func (pl *Pool) Get() *Buf {
	pl.mu.Lock()
	b, ok := pl.free.Dequeue()
	pl.mu.Unlock()
	if !ok {
		b = pl.newBuf()
	}
	b.Reset(pl.headroom)
	return b
}

// GetBatch fills dst with empty buffers (headroom reserved), touching the
// shared free list once; misses are satisfied by fresh allocations.
func (pl *Pool) GetBatch(dst []*Buf) {
	pl.mu.Lock()
	n := pl.free.DequeueBatch(dst)
	pl.mu.Unlock()
	for i := n; i < len(dst); i++ {
		dst[i] = pl.newBuf()
	}
	for _, b := range dst {
		b.Reset(pl.headroom)
	}
}

// PutBatch returns bs to the shared free list in one ring operation.
// Buffers beyond the free-list capacity (or foreign/unpooled buffers)
// are left to the garbage collector.
func (pl *Pool) PutBatch(bs []*Buf) {
	n := 0
	for _, b := range bs {
		if b != nil && b.pool == pl {
			bs[n] = b
			n++
		}
	}
	pl.free.EnqueueBatch(bs[:n])
}

// put is the single-buffer free path (Buf.Free): a lock-free MPSC
// enqueue; on overflow the buffer is left to the garbage collector.
func (pl *Pool) put(b *Buf) { pl.free.Enqueue(b) }

// PoolCache is the per-worker level of the two-level allocator: a plain
// LIFO stack of buffers owned by one goroutine, refilled from and spilled
// to the shared Pool half a cache at a time (the DPDK mempool per-lcore
// cache, substituted with a free list since Go gives no per-CPU storage;
// per-worker ownership provides the same no-contention property under the
// run-to-completion model). Get and Put are single-threaded and
// allocation free in the steady state; recently freed buffers are reused
// warm. Not safe for concurrent use.
//
// The zero value is a valid free-side cache: it binds itself to the pool
// of the first buffer Put into it, so a consumer that only releases
// buffers (e.g. a drop path) needs no explicit pool wiring.
type PoolCache struct {
	pool *Pool
	bufs []*Buf
	half int
}

// NewCache returns a cache over pl holding at most size buffers
// (DefaultCacheSize when size <= 0); refills and spills move size/2
// buffers per shared-pool interaction.
func (pl *Pool) NewCache(size int) *PoolCache {
	c := &PoolCache{}
	c.bind(pl, size)
	return c
}

func (c *PoolCache) bind(pl *Pool, size int) {
	if size <= 0 {
		size = DefaultCacheSize
	}
	if size < 2 {
		size = 2
	}
	c.pool = pl
	c.bufs = make([]*Buf, 0, size)
	c.half = size / 2
}

// Pool returns the shared pool the cache is bound to (nil until the
// first Put binds a zero-value cache).
func (c *PoolCache) Pool() *Pool { return c.pool }

// Get returns an empty buffer, from the local stack when possible; an
// empty stack triggers one batched refill from the shared pool. The cache
// must be bound (constructed by NewCache, or seeded by a prior Put).
func (c *PoolCache) Get() *Buf {
	if n := len(c.bufs); n > 0 {
		b := c.bufs[n-1]
		c.bufs[n-1] = nil
		c.bufs = c.bufs[:n-1]
		return b
	}
	c.bufs = c.bufs[:c.half]
	c.pool.GetBatch(c.bufs)
	n := len(c.bufs)
	b := c.bufs[n-1]
	c.bufs[n-1] = nil
	c.bufs = c.bufs[:n-1]
	return b
}

// GetBatch fills dst with empty buffers (headroom reserved), draining the
// local stack first and satisfying the remainder with one shared-pool
// GetBatch — the rx-burst allocation path: one call arms a whole
// vectorized socket read.
func (c *PoolCache) GetBatch(dst []*Buf) {
	n := 0
	for n < len(dst) {
		l := len(c.bufs)
		if l == 0 {
			break
		}
		dst[n] = c.bufs[l-1]
		c.bufs[l-1] = nil
		c.bufs = c.bufs[:l-1]
		n++
	}
	if n < len(dst) {
		c.pool.GetBatch(dst[n:])
	}
}

// PutBatch releases bs into the cache, spilling to the shared pool in
// half-cache batches as the stack fills — the tx-burst free path: one
// call retires a whole transmitted batch. Nil, unpooled and foreign
// buffers are handled as in Put.
func (c *PoolCache) PutBatch(bs []*Buf) {
	for _, b := range bs {
		c.Put(b)
	}
}

// Put releases a buffer into the local stack; a full stack spills half a
// cache to the shared pool in one batch. Unpooled buffers are left to the
// garbage collector and buffers from a different pool take the direct
// shared-list path, so Put is safe for any buffer.
func (c *PoolCache) Put(b *Buf) {
	if b == nil || b.pool == nil {
		return
	}
	if c.pool != b.pool {
		if c.pool != nil {
			b.Free()
			return
		}
		c.bind(b.pool, DefaultCacheSize)
	}
	if len(c.bufs) == cap(c.bufs) {
		spill := c.bufs[c.half:]
		c.pool.PutBatch(spill)
		for i := range spill {
			spill[i] = nil
		}
		c.bufs = c.bufs[:c.half]
	}
	c.bufs = append(c.bufs, b)
}

// Flush spills every cached buffer back to the shared pool. Call when a
// worker exits so its cached buffers are not stranded.
func (c *PoolCache) Flush() {
	if c.pool == nil || len(c.bufs) == 0 {
		return
	}
	c.pool.PutBatch(c.bufs)
	for i := range c.bufs {
		c.bufs[i] = nil
	}
	c.bufs = c.bufs[:0]
}
