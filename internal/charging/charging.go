// Package charging implements the offline-charging side of the EPC data
// plane: per-user usage accumulation (written by the data thread into the
// UE's counter state), Charging Data Record (CDR) generation on the
// control thread, and usage-report thresholds that trigger Gx
// reauthorization toward the PCRF.
package charging

import (
	"fmt"
	"sync"

	"pepc/internal/state"
)

// Usage is a point-in-time usage snapshot for one user.
type Usage struct {
	IMSI            uint64
	UplinkBytes     uint64
	DownlinkBytes   uint64
	UplinkPackets   uint64
	DownlinkPackets uint64
	RuleBytes       [4]uint64
}

// Total returns total bytes both directions.
func (u Usage) Total() uint64 { return u.UplinkBytes + u.DownlinkBytes }

// Sub returns the delta u - prev (per-field saturating at 0 to tolerate
// counter resets after migration restores).
func (u Usage) Sub(prev Usage) Usage {
	d := Usage{IMSI: u.IMSI}
	d.UplinkBytes = satSub(u.UplinkBytes, prev.UplinkBytes)
	d.DownlinkBytes = satSub(u.DownlinkBytes, prev.DownlinkBytes)
	d.UplinkPackets = satSub(u.UplinkPackets, prev.UplinkPackets)
	d.DownlinkPackets = satSub(u.DownlinkPackets, prev.DownlinkPackets)
	for i := range d.RuleBytes {
		d.RuleBytes[i] = satSub(u.RuleBytes[i], prev.RuleBytes[i])
	}
	return d
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// CDR is a Charging Data Record covering the interval between two usage
// collections.
type CDR struct {
	IMSI     uint64
	SeqNo    uint64
	OpenedAt int64 // monotonic nanos
	ClosedAt int64
	Delta    Usage
}

// String implements fmt.Stringer.
func (c CDR) String() string {
	return fmt.Sprintf("CDR{imsi=%d seq=%d up=%dB down=%dB}", c.IMSI, c.SeqNo, c.Delta.UplinkBytes, c.Delta.DownlinkBytes)
}

// Collector runs on the control thread: it reads each user's counter
// state (a read that PEPC's lock split makes contention free against the
// data thread's writes), closes CDRs on interval or volume thresholds,
// and reports deltas.
type Collector struct {
	mu       sync.Mutex
	last     map[uint64]Usage // last collected usage per IMSI
	seq      map[uint64]uint64
	openedAt map[uint64]int64

	// VolumeThreshold closes a CDR early once interval usage exceeds it
	// (0 disables).
	VolumeThreshold uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		last:     make(map[uint64]Usage),
		seq:      make(map[uint64]uint64),
		openedAt: make(map[uint64]int64),
	}
}

// Snapshot reads a UE's counters into a Usage (control thread).
func Snapshot(ue *state.UE, imsi uint64) Usage {
	var u Usage
	u.IMSI = imsi
	ue.ReadCounters(func(c *state.CounterState) {
		u.UplinkBytes = c.UplinkBytes
		u.DownlinkBytes = c.DownlinkBytes
		u.UplinkPackets = c.UplinkPackets
		u.DownlinkPackets = c.DownlinkPackets
		u.RuleBytes = c.RuleBytes
	})
	return u
}

// Collect closes the current CDR for a user at time now and opens the
// next one. It returns the record and whether the user had any usage this
// interval.
func (col *Collector) Collect(ue *state.UE, imsi uint64, now int64) (CDR, bool) {
	u := Snapshot(ue, imsi)
	col.mu.Lock()
	defer col.mu.Unlock()
	prev := col.last[imsi]
	delta := u.Sub(prev)
	col.last[imsi] = u
	col.seq[imsi]++
	opened := col.openedAt[imsi]
	col.openedAt[imsi] = now
	cdr := CDR{IMSI: imsi, SeqNo: col.seq[imsi], OpenedAt: opened, ClosedAt: now, Delta: delta}
	return cdr, delta.Total() > 0 || delta.UplinkPackets+delta.DownlinkPackets > 0
}

// OverThreshold reports whether the user's usage since the last Collect
// exceeds the volume threshold — the control thread polls this to decide
// when to send a Gx usage report.
func (col *Collector) OverThreshold(ue *state.UE, imsi uint64) bool {
	if col.VolumeThreshold == 0 {
		return false
	}
	u := Snapshot(ue, imsi)
	col.mu.Lock()
	prev := col.last[imsi]
	col.mu.Unlock()
	return u.Sub(prev).Total() >= col.VolumeThreshold
}

// Forget drops collection state for a detached or migrated-away user.
func (col *Collector) Forget(imsi uint64) {
	col.mu.Lock()
	delete(col.last, imsi)
	delete(col.seq, imsi)
	delete(col.openedAt, imsi)
	col.mu.Unlock()
}

// Seed primes the collector after a migration restore so the first CDR on
// the new slice does not re-bill usage already recorded at the old slice.
func (col *Collector) Seed(imsi uint64, u Usage, now int64) {
	col.mu.Lock()
	col.last[imsi] = u
	col.openedAt[imsi] = now
	col.mu.Unlock()
}
