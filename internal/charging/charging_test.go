package charging

import (
	"testing"

	"pepc/internal/state"
)

func ueWithUsage(up, down uint64) *state.UE {
	ue := &state.UE{}
	ue.WriteCounters(func(c *state.CounterState) {
		c.UplinkBytes = up
		c.DownlinkBytes = down
		c.UplinkPackets = up / 100
		c.DownlinkPackets = down / 100
	})
	return ue
}

func TestSnapshotReadsCounters(t *testing.T) {
	ue := ueWithUsage(1000, 2000)
	u := Snapshot(ue, 42)
	if u.IMSI != 42 || u.UplinkBytes != 1000 || u.DownlinkBytes != 2000 {
		t.Fatalf("snapshot: %+v", u)
	}
	if u.Total() != 3000 {
		t.Fatalf("total = %d", u.Total())
	}
}

func TestCollectDeltas(t *testing.T) {
	col := NewCollector()
	ue := ueWithUsage(1000, 0)
	cdr, busy := col.Collect(ue, 7, 100)
	if !busy || cdr.Delta.UplinkBytes != 1000 || cdr.SeqNo != 1 {
		t.Fatalf("first collect: %+v busy=%v", cdr, busy)
	}
	// More traffic arrives.
	ue.WriteCounters(func(c *state.CounterState) { c.UplinkBytes += 500 })
	cdr, busy = col.Collect(ue, 7, 200)
	if !busy || cdr.Delta.UplinkBytes != 500 || cdr.SeqNo != 2 {
		t.Fatalf("second collect: %+v", cdr)
	}
	if cdr.OpenedAt != 100 || cdr.ClosedAt != 200 {
		t.Fatalf("interval: %d..%d", cdr.OpenedAt, cdr.ClosedAt)
	}
	// No new traffic: not busy.
	_, busy = col.Collect(ue, 7, 300)
	if busy {
		t.Fatal("idle interval reported busy")
	}
}

func TestUsageSubSaturates(t *testing.T) {
	a := Usage{UplinkBytes: 10}
	b := Usage{UplinkBytes: 100}
	if d := a.Sub(b); d.UplinkBytes != 0 {
		t.Fatalf("saturating sub: %d", d.UplinkBytes)
	}
}

func TestOverThreshold(t *testing.T) {
	col := NewCollector()
	col.VolumeThreshold = 1000
	ue := ueWithUsage(0, 0)
	col.Collect(ue, 1, 0)
	if col.OverThreshold(ue, 1) {
		t.Fatal("fresh user over threshold")
	}
	ue.WriteCounters(func(c *state.CounterState) { c.DownlinkBytes = 999 })
	if col.OverThreshold(ue, 1) {
		t.Fatal("under threshold reported over")
	}
	ue.WriteCounters(func(c *state.CounterState) { c.DownlinkBytes = 1000 })
	if !col.OverThreshold(ue, 1) {
		t.Fatal("threshold crossing missed")
	}
	// Disabled threshold never triggers.
	col.VolumeThreshold = 0
	if col.OverThreshold(ue, 1) {
		t.Fatal("disabled threshold triggered")
	}
}

func TestForgetResetsSequence(t *testing.T) {
	col := NewCollector()
	ue := ueWithUsage(10, 0)
	col.Collect(ue, 5, 0)
	col.Forget(5)
	cdr, _ := col.Collect(ue, 5, 10)
	if cdr.SeqNo != 1 {
		t.Fatalf("seq after forget = %d", cdr.SeqNo)
	}
	// And the usage is re-billed from zero baseline, which is why Forget
	// is only for detach, not migration.
	if cdr.Delta.UplinkBytes != 10 {
		t.Fatalf("delta after forget = %d", cdr.Delta.UplinkBytes)
	}
}

func TestSeedAvoidsDoubleBilling(t *testing.T) {
	// Migration: old slice recorded 1000 bytes; new slice restores the
	// counter state and seeds the collector, so only post-migration
	// traffic bills.
	col := NewCollector()
	ue := ueWithUsage(1000, 0)
	col.Seed(9, Snapshot(ue, 9), 50)
	ue.WriteCounters(func(c *state.CounterState) { c.UplinkBytes += 250 })
	cdr, busy := col.Collect(ue, 9, 100)
	if !busy || cdr.Delta.UplinkBytes != 250 {
		t.Fatalf("post-migration delta = %d, want 250", cdr.Delta.UplinkBytes)
	}
	if cdr.OpenedAt != 50 {
		t.Fatalf("openedAt = %d", cdr.OpenedAt)
	}
}

func TestCDRString(t *testing.T) {
	c := CDR{IMSI: 1, SeqNo: 2, Delta: Usage{UplinkBytes: 3, DownlinkBytes: 4}}
	if got := c.String(); got != "CDR{imsi=1 seq=2 up=3B down=4B}" {
		t.Fatalf("String = %q", got)
	}
}
