package pepc_test

import (
	"testing"

	"pepc"
)

// The facade tests exercise the library exactly as an external consumer
// would: construct a node, wire backends, attach users, and verify the
// public behaviours hold together.

func TestFacadeAttachAndMigrate(t *testing.T) {
	hss := pepc.NewHSS()
	hss.ProvisionRange(1, 100, 10e6, 50e6)
	node := pepc.NewNode(
		pepc.SliceConfig{ID: 1, UserHint: 128},
		pepc.SliceConfig{ID: 2, UserHint: 128},
	)
	node.AttachProxy(pepc.NewProxy(hss, pepc.NewPCRF()))

	res, err := node.AttachUser(0, pepc.AttachSpec{IMSI: 7, DownlinkTEID: 0x70, ENBAddr: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.UplinkTEID == 0 || res.UEAddr == 0 {
		t.Fatalf("result: %+v", res)
	}
	if node.Slice(0).Users() != 1 {
		t.Fatal("user not on slice 0")
	}
	if err := node.Scheduler().MigrateUser(7, 0, 1); err != nil {
		t.Fatal(err)
	}
	if node.Slice(1).Users() != 1 || node.Slice(0).Users() != 0 {
		t.Fatal("migration did not move the user")
	}
}

func TestFacadeUnknownSubscriberRejected(t *testing.T) {
	node := pepc.NewNode(pepc.SliceConfig{ID: 1})
	node.AttachProxy(pepc.NewProxy(pepc.NewHSS(), nil))
	if _, err := node.AttachUser(0, pepc.AttachSpec{IMSI: 404}); err == nil {
		t.Fatal("unknown subscriber attached")
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := pepc.ExperimentNames()
	if len(names) != 19 { // 2 tables + 12 figures + faults + sockio + cluster + lat + pfcp
		t.Fatalf("experiments = %d: %v", len(names), names)
	}
	if names[0] != "table1" || names[2] != "lat" || names[3] != "fig4" {
		t.Fatalf("ordering: %v", names)
	}
	if _, err := pepc.RunExperiment("fig99", pepc.QuickScale); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// Tables run instantly at any scale.
	r, err := pepc.RunExperiment("table1", pepc.QuickScale)
	if err != nil || r.Figure != "Table 1" {
		t.Fatalf("table1: %+v %v", r.Figure, err)
	}
}

func TestFacadeTrafficThroughSlice(t *testing.T) {
	s := pepc.NewSlice(pepc.SliceConfig{ID: 3, UserHint: 64})
	res, err := s.Control().Attach(pepc.AttachSpec{IMSI: 9, ENBAddr: 1, DownlinkTEID: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Data().SyncUpdates()
	gen := pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: s.Config().CoreAddr},
		[]pepc.User{{IMSI: 9, UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}})
	batch := []*pepc.Buf{gen.NextUplink()}
	s.Data().ProcessUplinkBatch(batch, 0)
	if s.Data().Forwarded.Load() != 1 {
		t.Fatalf("forwarded=%d missed=%d", s.Data().Forwarded.Load(), s.Data().Missed.Load())
	}
	out, ok := s.Egress.Dequeue()
	if !ok {
		t.Fatal("no egress")
	}
	out.Free()
}
