// Command smfsim is the SMF-side N4 load generator: it associates with a
// UPF (pepcd -n4), then drives PFCP session churn — establishment with
// PDR/FAR/QER rules, optional mid-life modification (gNB tunnel rewrite
// plus a QER rate change), deletion — from concurrent workers, each a
// PFCP endpoint with its own sequence space and retransmission timers. A
// dedicated association keeps heartbeats flowing while the workers
// churn, so keepalive and procedures never contend for one socket.
//
// Usage:
//
//	smfsim -n4 127.0.0.1:8805 -workers 4 -duration 10s
//	smfsim -n4 127.0.0.1:8805 -rate 5000 -modify=false
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pepc/internal/pfcp"
	"pepc/internal/pkt"
)

func main() {
	n4Addr := flag.String("n4", "127.0.0.1:8805", "UPF N4 (PFCP) address")
	workers := flag.Int("workers", 2, "concurrent SMF workers (one PFCP endpoint each)")
	duration := flag.Duration("duration", 10*time.Second, "churn duration")
	rate := flag.Float64("rate", 0, "target session cycles/sec across all workers (0 = unlimited)")
	modify := flag.Bool("modify", true, "send a session modification (FAR tunnel rewrite + QER rate change) per cycle")
	heartbeat := flag.Duration("heartbeat", time.Second, "keepalive heartbeat interval (0 disables)")
	rto := flag.Duration("rto", pfcp.DefaultRetransmit, "request retransmission timeout")
	retries := flag.Int("retries", pfcp.DefaultRetries, "request retries before declaring the UPF down")
	flag.Parse()

	var cycles, retransmits atomic.Uint64
	stop := make(chan struct{})
	time.AfterFunc(*duration, func() { close(stop) })

	// Keepalive on its own association endpoint.
	if *heartbeat > 0 {
		hb, err := pfcp.Dial(*n4Addr, pkt.IPv4Addr(10, 255, 0, 0))
		if err != nil {
			log.Fatalf("smfsim: %v", err)
		}
		hb.SetRetransmit(*rto, *retries)
		if err := hb.Associate(); err != nil {
			log.Fatalf("smfsim: associate: %v", err)
		}
		go func() {
			if err := hb.KeepAlive(stop, *heartbeat); err != nil {
				log.Printf("smfsim: association lost: %v", err)
			}
		}()
	}

	perWorker := time.Duration(0)
	if *rate > 0 {
		perWorker = time.Duration(float64(time.Second) * float64(*workers) / *rate)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 1; w <= *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := pfcp.Dial(*n4Addr, pkt.IPv4Addr(10, 255, 0, uint8(w)))
			if err != nil {
				log.Printf("smfsim: worker %d: %v", w, err)
				return
			}
			defer c.Close()
			c.SetRetransmit(*rto, *retries)
			if err := c.Associate(); err != nil {
				log.Printf("smfsim: worker %d associate: %v", w, err)
				return
			}
			n, err := churn(c, w, *modify, perWorker, stop, &cycles)
			if err != nil {
				log.Printf("smfsim: worker %d stopped after %d cycles: %v", w, n, err)
			}
			retransmits.Add(c.Retransmits)
		}(w)
	}
	wg.Wait()
	el := time.Since(start)

	total := cycles.Load()
	fmt.Printf("smfsim: %d session cycles in %v (%.0f sessions/s, %d workers, modify=%v, %d retransmits)\n",
		total, el.Round(time.Millisecond), float64(total)/el.Seconds(), *workers, *modify, retransmits.Load())
	if total == 0 {
		os.Exit(1)
	}
}

// churn runs establish → (modify) → delete cycles until stop closes,
// pacing each cycle by gap when nonzero.
func churn(c *pfcp.Client, w int, modify bool, gap time.Duration, stop <-chan struct{}, cycles *atomic.Uint64) (uint64, error) {
	var n uint64
	for i := uint32(0); ; i++ {
		select {
		case <-stop:
			return n, nil
		default:
		}
		next := time.Now().Add(gap)
		req := sessionSpec(w, i)
		seid, err := c.Establish(req)
		if err != nil {
			return n, fmt.Errorf("establish: %w", err)
		}
		if modify {
			mod := &pfcp.SessionRequest{
				SEID: seid,
				UpdateFARs: []pfcp.FAR{{
					ID: 1, DestinationInterface: pfcp.InterfaceAccess,
					OuterHeaderCreation: true,
					TEID:                0xD100_0000 | i,
					Addr:                pkt.IPv4Addr(192, 168, 51, uint8(w)),
				}},
				UpdateQERs: []pfcp.QER{{ID: 1, MBRUplinkKbps: 20_000, MBRDownlinkKbps: 40_000}},
			}
			if err := c.Modify(mod); err != nil {
				return n, fmt.Errorf("modify: %w", err)
			}
		}
		if err := c.Delete(seid); err != nil {
			return n, fmt.Errorf("delete: %w", err)
		}
		n++
		cycles.Add(1)
		if gap > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-stop:
					return n, nil
				case <-time.After(d):
				}
			}
		}
	}
}

// sessionSpec builds one session's rules: an Access PDR detecting uplink
// by F-TEID (outer header removed), a Core PDR detecting downlink by the
// UE address, a FAR wrapping downlink toward the gNB, and a QER bounding
// the session aggregate. Identifiers embed the worker id so concurrent
// workers never collide; the 16-bit iteration window recycles ids long
// after their sessions were deleted.
func sessionSpec(w int, i uint32) *pfcp.SessionRequest {
	teid := 0x5E00_0000 | uint32(w)<<20 | i&0xFFFFF
	ueAddr := pkt.IPv4Addr(45, uint8(w), uint8(i>>8), uint8(i))
	return &pfcp.SessionRequest{
		CreatePDRs: []pfcp.PDR{
			{ID: 1, Precedence: 100, SourceInterface: pfcp.InterfaceAccess,
				TEID: teid, TEIDAddr: pkt.IPv4Addr(127, 0, 0, 1),
				OuterHeaderRemoval: true, FARID: 2, QERID: 1},
			{ID: 2, Precedence: 100, SourceInterface: pfcp.InterfaceCore,
				UEAddr: ueAddr, FARID: 1, QERID: 1},
		},
		CreateFARs: []pfcp.FAR{
			{ID: 1, DestinationInterface: pfcp.InterfaceAccess,
				OuterHeaderCreation: true,
				TEID:                0xD000_0000 | i,
				Addr:                pkt.IPv4Addr(192, 168, 50, uint8(w))},
			{ID: 2, DestinationInterface: pfcp.InterfaceCore},
		},
		CreateQERs: []pfcp.QER{
			{ID: 1, MBRUplinkKbps: 50_000, MBRDownlinkKbps: 100_000},
		},
	}
}
