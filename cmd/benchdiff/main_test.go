package main

import "testing"

// TestMatchAnyEmptyTokens pins the comma-glob parsing: empty tokens from
// trailing, doubled or lone commas must be inert, not patterns. Before
// the guard, "-only 'BENCH_fig4*,'" fed "" to filepath.Match and a
// "-skip" list ending in a comma could skip nothing or, with a later
// match-all interpretation, everything.
func TestMatchAnyEmptyTokens(t *testing.T) {
	cases := []struct {
		globs, name string
		want        bool
	}{
		// Plain matching still works.
		{"BENCH_fig4.json", "BENCH_fig4.json", true},
		{"BENCH_fig4*", "BENCH_fig4.json", true},
		{"BENCH_fig5*", "BENCH_fig4.json", false},
		{"BENCH_fig5*,BENCH_fig4*", "BENCH_fig4.json", true},
		// Empty tokens are skipped, wherever they appear.
		{"BENCH_fig4*,", "BENCH_fig5.json", false},
		{",BENCH_fig4*", "BENCH_fig5.json", false},
		{"BENCH_fig4*,,BENCH_fig6*", "BENCH_fig5.json", false},
		{",", "BENCH_fig5.json", false},
		{",,", "BENCH_fig5.json", false},
		// An all-empty list matches nothing (callers gate on "" already,
		// but a lone comma must not differ from that).
		{",", "", false},
		// Spaces after commas are trimmed, not made part of the pattern.
		{"BENCH_fig4*, BENCH_fig5*", "BENCH_fig5.json", true},
		{" BENCH_fig4* ", "BENCH_fig4.json", true},
		// A malformed glob fails that token quietly, not the whole list.
		{"[,BENCH_fig4*", "BENCH_fig4.json", true},
	}
	for _, c := range cases {
		if got := matchAny(c.globs, c.name); got != c.want {
			t.Errorf("matchAny(%q, %q) = %v, want %v", c.globs, c.name, got, c.want)
		}
	}
}
