package main

import "testing"

// TestMatchAnyEmptyTokens pins the comma-glob parsing: empty tokens from
// trailing, doubled or lone commas must be inert, not patterns. Before
// the guard, "-only 'BENCH_fig4*,'" fed "" to filepath.Match and a
// "-skip" list ending in a comma could skip nothing or, with a later
// match-all interpretation, everything.
func TestMatchAnyEmptyTokens(t *testing.T) {
	cases := []struct {
		globs, name string
		want        bool
	}{
		// Plain matching still works.
		{"BENCH_fig4.json", "BENCH_fig4.json", true},
		{"BENCH_fig4*", "BENCH_fig4.json", true},
		{"BENCH_fig5*", "BENCH_fig4.json", false},
		{"BENCH_fig5*,BENCH_fig4*", "BENCH_fig4.json", true},
		// Empty tokens are skipped, wherever they appear.
		{"BENCH_fig4*,", "BENCH_fig5.json", false},
		{",BENCH_fig4*", "BENCH_fig5.json", false},
		{"BENCH_fig4*,,BENCH_fig6*", "BENCH_fig5.json", false},
		{",", "BENCH_fig5.json", false},
		{",,", "BENCH_fig5.json", false},
		// An all-empty list matches nothing (callers gate on "" already,
		// but a lone comma must not differ from that).
		{",", "", false},
		// Spaces after commas are trimmed, not made part of the pattern.
		{"BENCH_fig4*, BENCH_fig5*", "BENCH_fig5.json", true},
		{" BENCH_fig4* ", "BENCH_fig4.json", true},
		// A malformed glob fails that token quietly, not the whole list.
		{"[,BENCH_fig4*", "BENCH_fig4.json", true},
	}
	for _, c := range cases {
		if got := matchAny(c.globs, c.name); got != c.want {
			t.Errorf("matchAny(%q, %q) = %v, want %v", c.globs, c.name, got, c.want)
		}
	}
}

// TestRegressionDirections pins the gate's sign convention in both
// directions: throughput series fail only on drops, latency series
// ("down") only on rises, each beyond the threshold.
func TestRegressionDirections(t *testing.T) {
	cases := []struct {
		direction   string
		base, fresh float64
		fail        bool
	}{
		// Higher is better (default and explicit "up"): drops fail.
		{"", 10, 8.5, true},   // −15% beyond 10%
		{"", 10, 9.5, false},  // −5% within threshold
		{"", 10, 15, false},   // improvement never fails
		{"up", 10, 8.5, true}, // explicit "up" behaves like default
		{"up", 10, 12, false}, //
		// Lower is better: rises fail, drops are improvements.
		{"down", 10, 11.5, true}, // +15% beyond 10%
		{"down", 10, 10.5, false},
		{"down", 10, 5, false}, // faster tail never fails
	}
	for _, c := range cases {
		_, fail := regression(c.direction, c.base, c.fresh, 0.10)
		if fail != c.fail {
			t.Errorf("regression(%q, %g, %g, 0.10) fail = %v, want %v",
				c.direction, c.base, c.fresh, fail, c.fail)
		}
	}
}

// TestRatchetYDirections pins the -update semantics: baselines only move
// toward the conservative side — down to the floor for throughput, up to
// the ceiling for latency.
func TestRatchetYDirections(t *testing.T) {
	cases := []struct {
		direction   string
		base, fresh float64
		want        float64
		moved       bool
	}{
		{"", 10, 8, 8, true},       // throughput floor lowers
		{"", 10, 12, 10, false},    // a faster run never raises the floor
		{"up", 10, 9, 9, true},     //
		{"down", 10, 12, 12, true}, // latency ceiling rises
		{"down", 10, 8, 10, false}, // a faster tail never tightens the gate
	}
	for _, c := range cases {
		got, moved := ratchetY(c.direction, c.base, c.fresh)
		if got != c.want || moved != c.moved {
			t.Errorf("ratchetY(%q, %g, %g) = (%g, %v), want (%g, %v)",
				c.direction, c.base, c.fresh, got, moved, c.want, c.moved)
		}
	}
}
