package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMatchAnyEmptyTokens pins the comma-glob parsing: empty tokens from
// trailing, doubled or lone commas must be inert, not patterns. Before
// the guard, "-only 'BENCH_fig4*,'" fed "" to filepath.Match and a
// "-skip" list ending in a comma could skip nothing or, with a later
// match-all interpretation, everything.
func TestMatchAnyEmptyTokens(t *testing.T) {
	cases := []struct {
		globs, name string
		want        bool
	}{
		// Plain matching still works.
		{"BENCH_fig4.json", "BENCH_fig4.json", true},
		{"BENCH_fig4*", "BENCH_fig4.json", true},
		{"BENCH_fig5*", "BENCH_fig4.json", false},
		{"BENCH_fig5*,BENCH_fig4*", "BENCH_fig4.json", true},
		// Empty tokens are skipped, wherever they appear.
		{"BENCH_fig4*,", "BENCH_fig5.json", false},
		{",BENCH_fig4*", "BENCH_fig5.json", false},
		{"BENCH_fig4*,,BENCH_fig6*", "BENCH_fig5.json", false},
		{",", "BENCH_fig5.json", false},
		{",,", "BENCH_fig5.json", false},
		// An all-empty list matches nothing (callers gate on "" already,
		// but a lone comma must not differ from that).
		{",", "", false},
		// Spaces after commas are trimmed, not made part of the pattern.
		{"BENCH_fig4*, BENCH_fig5*", "BENCH_fig5.json", true},
		{" BENCH_fig4* ", "BENCH_fig4.json", true},
		// A malformed glob fails that token quietly, not the whole list.
		{"[,BENCH_fig4*", "BENCH_fig4.json", true},
	}
	for _, c := range cases {
		if got := matchAny(c.globs, c.name); got != c.want {
			t.Errorf("matchAny(%q, %q) = %v, want %v", c.globs, c.name, got, c.want)
		}
	}
}

// TestRegressionDirections pins the gate's sign convention in both
// directions: throughput series fail only on drops, latency series
// ("down") only on rises, each beyond the threshold.
func TestRegressionDirections(t *testing.T) {
	cases := []struct {
		direction   string
		base, fresh float64
		fail        bool
	}{
		// Higher is better (default and explicit "up"): drops fail.
		{"", 10, 8.5, true},   // −15% beyond 10%
		{"", 10, 9.5, false},  // −5% within threshold
		{"", 10, 15, false},   // improvement never fails
		{"up", 10, 8.5, true}, // explicit "up" behaves like default
		{"up", 10, 12, false}, //
		// Lower is better: rises fail, drops are improvements.
		{"down", 10, 11.5, true}, // +15% beyond 10%
		{"down", 10, 10.5, false},
		{"down", 10, 5, false}, // faster tail never fails
	}
	for _, c := range cases {
		_, fail := regression(c.direction, c.base, c.fresh, 0.10)
		if fail != c.fail {
			t.Errorf("regression(%q, %g, %g, 0.10) fail = %v, want %v",
				c.direction, c.base, c.fresh, fail, c.fail)
		}
	}
}

// TestCompareMissingSeries pins the loud-failure contract on series
// membership: a baseline series absent from the fresh run fails, and a
// fresh series absent from the baseline fails too (before the fix a
// freshly added series — e.g. a new Direction:"down" latency series —
// was silently not gated at all).
func TestCompareMissingSeries(t *testing.T) {
	up := series{Name: "PEPC up", Points: []point{{X: 1, Y: 10}}}
	down := series{Name: "PEPC p99", Direction: "down", Points: []point{{X: 1, Y: 5}}}

	// Identical sides: no failures.
	both := result{Series: []series{up, down}}
	if got := compare(both, both, "", 0.10, io.Discard); got != 0 {
		t.Fatalf("identical results: %d failures, want 0", got)
	}
	// Baseline series missing from fresh: one failure.
	if got := compare(both, result{Series: []series{up}}, "", 0.10, io.Discard); got != 1 {
		t.Fatalf("series missing from fresh: %d failures, want 1", got)
	}
	// Fresh-only series (new in the figure, not yet ratcheted): one
	// failure, with a message pointing at -update.
	var out strings.Builder
	if got := compare(result{Series: []series{up}}, both, "", 0.10, &out); got != 1 {
		t.Fatalf("series missing from baseline: %d failures, want 1", got)
	}
	if !strings.Contains(out.String(), "missing from baseline") || !strings.Contains(out.String(), "-update") {
		t.Fatalf("fresh-only failure message does not point at the fix:\n%s", out.String())
	}
	// The series prefix filter applies to both directions of the check.
	if got := compare(result{Series: []series{up}}, both, "other", 0.10, io.Discard); got != 0 {
		t.Fatalf("prefix-filtered compare: %d failures, want 0", got)
	}
}

// TestRatchetAddsFreshOnlySeries pins the -update half of the contract:
// a series present only in the fresh results is appended to the baseline
// (direction and points intact) instead of being dropped, while existing
// series still only ratchet toward the conservative side.
func TestRatchetAddsFreshOnlySeries(t *testing.T) {
	baseDir, freshDir := t.TempDir(), t.TempDir()
	write := func(dir string, r result) {
		if err := save(filepath.Join(dir, "BENCH_x.json"), r); err != nil {
			t.Fatal(err)
		}
	}
	write(baseDir, result{Figure: "x", Series: []series{
		{Name: "PEPC up", Points: []point{{X: 1, Y: 10}}},
	}})
	write(freshDir, result{Figure: "x", Series: []series{
		{Name: "PEPC up", Points: []point{{X: 1, Y: 8}}},
		{Name: "PEPC p99", Direction: "down", Points: []point{{X: 1, Y: 5}, {X: 2, Y: 7}}},
	}})
	if err := ratchet(baseDir, freshDir); err != nil {
		t.Fatal(err)
	}
	got, err := load(filepath.Join(baseDir, "BENCH_x.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 2 {
		t.Fatalf("baseline has %d series after ratchet, want 2", len(got.Series))
	}
	if y, ok := findPoint(got.Series[0].Points, 1); !ok || y != 8 {
		t.Fatalf("existing series did not ratchet down: y=%g ok=%v", y, ok)
	}
	ns := findSeries(got.Series, "PEPC p99")
	if ns == nil {
		t.Fatal("fresh-only series was not appended to the baseline")
	}
	if ns.Direction != "down" || len(ns.Points) != 2 || ns.Points[1].Y != 7 {
		t.Fatalf("appended series lost data: %+v", ns)
	}
	// A second ratchet of the same fresh run is a no-op (idempotent).
	if err := ratchet(baseDir, freshDir); err != nil {
		t.Fatal(err)
	}
	again, err := load(filepath.Join(baseDir, "BENCH_x.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Series) != 2 {
		t.Fatalf("re-ratchet duplicated series: %d", len(again.Series))
	}
	// And the appended series now gates: compare passes clean.
	fresh, err := load(filepath.Join(freshDir, "BENCH_x.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := compare(again, fresh, "", 0.10, io.Discard); got != 0 {
		t.Fatalf("post-ratchet compare: %d failures, want 0", got)
	}
	_ = os.Remove(filepath.Join(freshDir, "BENCH_x.json"))
}

// TestRatchetYDirections pins the -update semantics: baselines only move
// toward the conservative side — down to the floor for throughput, up to
// the ceiling for latency.
func TestRatchetYDirections(t *testing.T) {
	cases := []struct {
		direction   string
		base, fresh float64
		want        float64
		moved       bool
	}{
		{"", 10, 8, 8, true},       // throughput floor lowers
		{"", 10, 12, 10, false},    // a faster run never raises the floor
		{"up", 10, 9, 9, true},     //
		{"down", 10, 12, 12, true}, // latency ceiling rises
		{"down", 10, 8, 10, false}, // a faster tail never tightens the gate
	}
	for _, c := range cases {
		got, moved := ratchetY(c.direction, c.base, c.fresh)
		if got != c.want || moved != c.moved {
			t.Errorf("ratchetY(%q, %g, %g) = (%g, %v), want (%g, %v)",
				c.direction, c.base, c.fresh, got, moved, c.want, c.moved)
		}
	}
}
