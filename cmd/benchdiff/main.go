// Command benchdiff compares freshly generated BENCH_<name>.json results
// (pepcbench -json) against a checked-in baseline directory and fails when
// any series point regresses by more than the threshold. All tracked
// figures report throughput (higher is better), so a regression is a drop
// in Y at the same X.
//
// Usage:
//
//	benchdiff -baseline bench/baseline -fresh /tmp/bench [-threshold 0.10] [-series PEPC]
//	benchdiff -baseline bench/baseline -fresh /tmp/bench -update
//
// -update ratchets the baseline DOWN: each point becomes the minimum of
// the existing baseline and the fresh run (a missing baseline file is
// copied). Running several times builds a conservative floor, which is
// what makes a fixed threshold usable on noisy shared-CPU hosts.
//
// Points present only on one side are reported but do not fail the run
// (scale overrides legitimately change the swept X values); a series
// present in the baseline but missing from the fresh results does fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

type result struct {
	Figure string
	Title  string
	XLabel string
	YLabel string
	Series []series
	Notes  []string
}

type series struct {
	Name   string
	Points []point
}

type point struct {
	X float64
	Y float64
}

func load(path string) (result, error) {
	var r result
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(data, &r)
}

func save(path string, r result) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// matchAny reports whether name matches any of the comma-separated globs.
// Empty tokens — a trailing or doubled comma, or a lone comma — are
// skipped rather than treated as patterns, so "-skip 'BENCH_fig4*,'"
// never silently skips every baseline; tokens are trimmed so spaces
// after commas don't defeat a match.
func matchAny(globs, name string) bool {
	for _, g := range strings.Split(globs, ",") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		if m, _ := filepath.Match(g, name); m {
			return true
		}
	}
	return false
}

func main() {
	baseDir := flag.String("baseline", "bench/baseline", "directory with checked-in BENCH_*.json baselines")
	freshDir := flag.String("fresh", ".", "directory with freshly generated BENCH_*.json results")
	threshold := flag.Float64("threshold", 0.10, "maximum tolerated fractional drop per point")
	prefix := flag.String("series", "", "only gate series whose name starts with this prefix (empty = all)")
	only := flag.String("only", "", "only compare baseline files whose name matches one of these comma-separated globs (empty = all)")
	skip := flag.String("skip", "", "skip baseline files whose name matches one of these comma-separated globs")
	update := flag.Bool("update", false, "ratchet baselines down to min(baseline, fresh) instead of comparing")
	flag.Parse()

	if *update {
		if err := ratchet(*baseDir, *freshDir); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		return
	}

	paths, err := filepath.Glob(filepath.Join(*baseDir, "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no baselines under %s\n", *baseDir)
		os.Exit(2)
	}

	failures := 0
	for _, basePath := range paths {
		name := filepath.Base(basePath)
		if *only != "" && !matchAny(*only, name) {
			continue
		}
		if *skip != "" && matchAny(*skip, name) {
			continue
		}
		base, err := load(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", basePath, err)
			os.Exit(2)
		}
		fresh, err := load(filepath.Join(*freshDir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s: fresh result missing: %v\n", name, err)
			failures++
			continue
		}
		fmt.Printf("== %s (%s)\n", name, base.Figure)
		for _, bs := range base.Series {
			if !strings.HasPrefix(bs.Name, *prefix) {
				continue
			}
			fs := findSeries(fresh.Series, bs.Name)
			if fs == nil {
				fmt.Printf("  FAIL %-15s series missing from fresh results\n", bs.Name)
				failures++
				continue
			}
			for _, bp := range bs.Points {
				fp, ok := findPoint(fs.Points, bp.X)
				if !ok {
					fmt.Printf("  skip %-15s x=%-10g not in fresh sweep\n", bs.Name, bp.X)
					continue
				}
				if bp.Y <= 0 {
					continue
				}
				delta := (fp - bp.Y) / bp.Y
				status := "ok  "
				if delta < -*threshold {
					status = "FAIL"
					failures++
				}
				fmt.Printf("  %s %-15s x=%-10g base=%-8.3f fresh=%-8.3f (%+.1f%%)\n",
					status, bs.Name, bp.X, bp.Y, fp, delta*100)
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%\n", failures, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// ratchet folds a fresh run into the baselines, keeping the per-point
// minimum so repeated runs converge to a floor that honest noise does
// not dip more than the threshold below.
func ratchet(baseDir, freshDir string) error {
	paths, err := filepath.Glob(filepath.Join(freshDir, "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		return fmt.Errorf("no fresh BENCH_*.json under %s", freshDir)
	}
	if err := os.MkdirAll(baseDir, 0o755); err != nil {
		return err
	}
	for _, freshPath := range paths {
		name := filepath.Base(freshPath)
		fresh, err := load(freshPath)
		if err != nil {
			return fmt.Errorf("%s: %w", freshPath, err)
		}
		basePath := filepath.Join(baseDir, name)
		base, err := load(basePath)
		if os.IsNotExist(err) {
			if err := save(basePath, fresh); err != nil {
				return err
			}
			fmt.Printf("benchdiff: %s: baseline created\n", name)
			continue
		} else if err != nil {
			return fmt.Errorf("%s: %w", basePath, err)
		}
		lowered := 0
		for i := range base.Series {
			fs := findSeries(fresh.Series, base.Series[i].Name)
			if fs == nil {
				continue
			}
			for j := range base.Series[i].Points {
				p := &base.Series[i].Points[j]
				if y, ok := findPoint(fs.Points, p.X); ok && y < p.Y {
					p.Y = y
					lowered++
				}
			}
		}
		if err := save(basePath, base); err != nil {
			return err
		}
		fmt.Printf("benchdiff: %s: %d point(s) ratcheted down\n", name, lowered)
	}
	return nil
}

func findSeries(ss []series, name string) *series {
	for i := range ss {
		if ss[i].Name == name {
			return &ss[i]
		}
	}
	return nil
}

func findPoint(ps []point, x float64) (float64, bool) {
	for _, p := range ps {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}
