// Command benchdiff compares freshly generated BENCH_<name>.json results
// (pepcbench -json) against a checked-in baseline directory and fails when
// any series point regresses by more than the threshold. Each series
// declares its gating direction: the default (Direction "" or "up") is
// throughput-style, where a regression is a drop in Y at the same X;
// Direction "down" is latency-style, where a regression is a rise.
//
// Usage:
//
//	benchdiff -baseline bench/baseline -fresh /tmp/bench [-threshold 0.10] [-series PEPC]
//	benchdiff -baseline bench/baseline -fresh /tmp/bench -update
//
// -update ratchets the baseline toward its conservative side: each
// higher-is-better point becomes the minimum of the existing baseline
// and the fresh run, each lower-is-better point the maximum (a missing
// baseline file is copied). Running several times builds a floor (or
// ceiling) honest noise does not cross, which is what makes a fixed
// threshold usable on noisy shared-CPU hosts.
//
// Points present only on one side are reported but do not fail the run
// (scale overrides legitimately change the swept X values); a series
// present on only one side fails — missing from the fresh results means
// a figure stopped producing it, missing from the baseline means a new
// series nothing gates (ratchet it in with -update, which appends
// fresh-only series to the baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

type result struct {
	Figure string
	Title  string
	XLabel string
	YLabel string
	Series []series
	Notes  []string
}

type series struct {
	Name      string
	Points    []point
	Direction string `json:",omitempty"` // "", "up": higher is better; "down": lower is better
}

type point struct {
	X float64
	Y float64
}

func load(path string) (result, error) {
	var r result
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(data, &r)
}

func save(path string, r result) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// matchAny reports whether name matches any of the comma-separated globs.
// Empty tokens — a trailing or doubled comma, or a lone comma — are
// skipped rather than treated as patterns, so "-skip 'BENCH_fig4*,'"
// never silently skips every baseline; tokens are trimmed so spaces
// after commas don't defeat a match.
func matchAny(globs, name string) bool {
	for _, g := range strings.Split(globs, ",") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		if m, _ := filepath.Match(g, name); m {
			return true
		}
	}
	return false
}

func main() {
	baseDir := flag.String("baseline", "bench/baseline", "directory with checked-in BENCH_*.json baselines")
	freshDir := flag.String("fresh", ".", "directory with freshly generated BENCH_*.json results")
	threshold := flag.Float64("threshold", 0.10, "maximum tolerated fractional drop per point")
	prefix := flag.String("series", "", "only gate series whose name starts with this prefix (empty = all)")
	only := flag.String("only", "", "only compare baseline files whose name matches one of these comma-separated globs (empty = all)")
	skip := flag.String("skip", "", "skip baseline files whose name matches one of these comma-separated globs")
	update := flag.Bool("update", false, "ratchet baselines down to min(baseline, fresh) instead of comparing")
	flag.Parse()

	if *update {
		if err := ratchet(*baseDir, *freshDir); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		return
	}

	paths, err := filepath.Glob(filepath.Join(*baseDir, "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no baselines under %s\n", *baseDir)
		os.Exit(2)
	}

	failures := 0
	for _, basePath := range paths {
		name := filepath.Base(basePath)
		if *only != "" && !matchAny(*only, name) {
			continue
		}
		if *skip != "" && matchAny(*skip, name) {
			continue
		}
		base, err := load(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", basePath, err)
			os.Exit(2)
		}
		fresh, err := load(filepath.Join(*freshDir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s: fresh result missing: %v\n", name, err)
			failures++
			continue
		}
		fmt.Printf("== %s (%s)\n", name, base.Figure)
		failures += compare(base, fresh, *prefix, *threshold, os.Stdout)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%\n", failures, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

// compare gates one fresh result against its baseline and returns the
// failure count. Both absences fail loudly: a baseline series missing
// from the fresh run (a figure stopped producing it), and a fresh series
// missing from the baseline (a figure grew a series nothing gates — run
// benchdiff -update to ratchet it in).
func compare(base, fresh result, prefix string, threshold float64, w io.Writer) int {
	failures := 0
	for _, bs := range base.Series {
		if !strings.HasPrefix(bs.Name, prefix) {
			continue
		}
		fs := findSeries(fresh.Series, bs.Name)
		if fs == nil {
			fmt.Fprintf(w, "  FAIL %-15s series missing from fresh results\n", bs.Name)
			failures++
			continue
		}
		for _, bp := range bs.Points {
			fp, ok := findPoint(fs.Points, bp.X)
			if !ok {
				fmt.Fprintf(w, "  skip %-15s x=%-10g not in fresh sweep\n", bs.Name, bp.X)
				continue
			}
			if bp.Y <= 0 {
				continue
			}
			delta, fail := regression(bs.Direction, bp.Y, fp, threshold)
			status := "ok  "
			if fail {
				status = "FAIL"
				failures++
			}
			fmt.Fprintf(w, "  %s %-15s x=%-10g base=%-8.3f fresh=%-8.3f (%+.1f%%)\n",
				status, bs.Name, bp.X, bp.Y, fp, delta*100)
		}
	}
	for _, fs := range fresh.Series {
		if !strings.HasPrefix(fs.Name, prefix) {
			continue
		}
		if findSeries(base.Series, fs.Name) == nil {
			fmt.Fprintf(w, "  FAIL %-15s series missing from baseline (ratchet it in with -update)\n", fs.Name)
			failures++
		}
	}
	return failures
}

// regression reports the fractional change of fresh against base and
// whether it is a failure for the series direction: higher-is-better
// series ("" or "up") fail on a drop beyond threshold, lower-is-better
// series ("down") on a rise beyond it.
func regression(direction string, base, fresh, threshold float64) (delta float64, fail bool) {
	delta = (fresh - base) / base
	if direction == "down" {
		return delta, delta > threshold
	}
	return delta, delta < -threshold
}

// ratchetY folds a fresh Y into a baseline point, moving it only toward
// the conservative side: down (minimum) for higher-is-better series, up
// (maximum) for lower-is-better ones. Reports whether the point moved.
func ratchetY(direction string, base, fresh float64) (float64, bool) {
	if direction == "down" {
		if fresh > base {
			return fresh, true
		}
		return base, false
	}
	if fresh < base {
		return fresh, true
	}
	return base, false
}

// ratchet folds a fresh run into the baselines via ratchetY so repeated
// runs converge to a bound that honest noise does not cross by more
// than the threshold.
func ratchet(baseDir, freshDir string) error {
	paths, err := filepath.Glob(filepath.Join(freshDir, "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		return fmt.Errorf("no fresh BENCH_*.json under %s", freshDir)
	}
	if err := os.MkdirAll(baseDir, 0o755); err != nil {
		return err
	}
	for _, freshPath := range paths {
		name := filepath.Base(freshPath)
		fresh, err := load(freshPath)
		if err != nil {
			return fmt.Errorf("%s: %w", freshPath, err)
		}
		basePath := filepath.Join(baseDir, name)
		base, err := load(basePath)
		if os.IsNotExist(err) {
			if err := save(basePath, fresh); err != nil {
				return err
			}
			fmt.Printf("benchdiff: %s: baseline created\n", name)
			continue
		} else if err != nil {
			return fmt.Errorf("%s: %w", basePath, err)
		}
		moved := 0
		for i := range base.Series {
			fs := findSeries(fresh.Series, base.Series[i].Name)
			if fs == nil {
				continue
			}
			for j := range base.Series[i].Points {
				p := &base.Series[i].Points[j]
				if y, ok := findPoint(fs.Points, p.X); ok {
					if ny, changed := ratchetY(base.Series[i].Direction, p.Y, y); changed {
						p.Y = ny
						moved++
					}
				}
			}
		}
		// A fresh-only series enters the baseline wholesale, so the next
		// compare gates it instead of failing it as unknown.
		added := 0
		for _, fs := range fresh.Series {
			if findSeries(base.Series, fs.Name) == nil {
				base.Series = append(base.Series, fs)
				added++
			}
		}
		if err := save(basePath, base); err != nil {
			return err
		}
		fmt.Printf("benchdiff: %s: %d point(s) ratcheted, %d series added\n", name, moved, added)
	}
	return nil
}

func findSeries(ss []series, name string) *series {
	for i := range ss {
		if ss[i].Name == name {
			return &ss[i]
		}
	}
	return nil
}

func findPoint(ps []point, x float64) (float64, bool) {
	for _, p := range ps {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}
