package main

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"pepc"
	"pepc/internal/gtp"
	"pepc/internal/pfcp"
	"pepc/internal/pkt"
	"pepc/internal/sockio"
	"pepc/internal/workload"
)

// TestPepcdN4 is the UPF-mode integration test: pepcd's N4 listener and
// wire planes on real loopback UDP, driven by a pfcp.Client the way
// cmd/smfsim drives it. The SMF establishes a session (PDR/FAR/QER);
// uplink GTP-U to the PDR's F-TEID decapsulates out to the SGi sink;
// downlink to the UE address comes back wrapped in the FAR's tunnel; a
// modification rewrites the tunnel TEID and drops the QER rate until
// policing bites; deletion makes the F-TEID unroutable again.
func TestPepcdN4(t *testing.T) {
	node := pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: 64})
	stop := make(chan struct{})
	stats := &wireStats{}
	go node.Slice(0).RunData(stop)

	// SGi sink for decapped uplink.
	sgiSink, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer sgiSink.Close()
	sgi := sgiSink.LocalAddr().(*net.UDPAddr).AddrPort()

	// GTP-U wire planes, as main() runs them.
	gtpuConn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	gtpuIO, err := sockio.NewConn(gtpuConn.(*net.UDPConn))
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	peers := sockio.NewPeerTable()
	go runQueueEgress([]*pepc.Slice{node.Slice(0)}, gtpuIO, peers, sgi, 8, time.Millisecond, nil, stats, stop)
	go runGTPURx(node, gtpuIO, pool, peers, 16, false, stop)

	// N4 listener, as main() runs it.
	n4Conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	upf := pepc.NewUPF(node, localIPv4(n4Conn))
	go serveN4(upf, n4Conn, stop)

	// SMF side: associate, establish.
	smf, err := pfcp.Dial(n4Conn.LocalAddr().String(), pkt.IPv4Addr(10, 255, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer smf.Close()
	smf.SetRetransmit(200*time.Millisecond, 5)
	if err := smf.Associate(); err != nil {
		t.Fatalf("associate: %v", err)
	}
	if err := smf.Heartbeat(); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}

	const (
		teid    = 0x5E10_0001
		gnbTEID = 0xD000_0001
	)
	ueAddr := pkt.IPv4Addr(45, 1, 0, 1)
	gnbAddr := uint32(0xC0A83201) // 192.168.50.1, the outer src our gNB socket claims
	seid, err := smf.Establish(&pfcp.SessionRequest{
		CreatePDRs: []pfcp.PDR{
			{ID: 1, Precedence: 100, SourceInterface: pfcp.InterfaceAccess,
				TEID: teid, TEIDAddr: pkt.IPv4Addr(127, 0, 0, 1),
				OuterHeaderRemoval: true, FARID: 2, QERID: 1},
			{ID: 2, Precedence: 100, SourceInterface: pfcp.InterfaceCore,
				UEAddr: ueAddr, FARID: 1, QERID: 1},
		},
		CreateFARs: []pfcp.FAR{
			{ID: 1, DestinationInterface: pfcp.InterfaceAccess,
				OuterHeaderCreation: true, TEID: gnbTEID, Addr: gnbAddr},
			{ID: 2, DestinationInterface: pfcp.InterfaceCore},
		},
		CreateQERs: []pfcp.QER{{ID: 1, MBRUplinkKbps: 50_000, MBRDownlinkKbps: 100_000}},
	})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	if got := upf.Sessions(); got != 1 {
		t.Fatalf("sessions = %d", got)
	}

	// gNB side: uplink GTP-U bursts to the PDR's F-TEID, outer src = the
	// FAR's tunnel address so the rx path learns where downlink goes.
	dconn, err := net.Dial("udp4", gtpuIO.LocalAddrPort().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dconn.Close()
	dio, err := sockio.NewConn(dconn.(*net.UDPConn))
	if err != nil {
		t.Fatal(err)
	}
	snd := sockio.NewSender(dio, 16, time.Hour)
	defer snd.Close()
	users := []workload.User{{IMSI: 1, UplinkTEID: teid, UEAddr: ueAddr}}
	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: gnbAddr}, users)

	// Closed loop: loopback UDP drops silently under contention, so offer
	// bursts until the data plane has forwarded enough.
	want := uint64(100)
	if testing.Short() {
		want = 20
	}
	deadline := time.After(20 * time.Second)
	for node.Slice(0).Data().Forwarded.Load() < want {
		select {
		case <-deadline:
			t.Fatalf("forwarded only %d of %d (missed=%d dropped=%d unknown=%d)",
				node.Slice(0).Data().Forwarded.Load(), want,
				node.Slice(0).Data().Missed.Load(), node.Slice(0).Data().Dropped.Load(),
				node.Demux().Unknown.Load())
		default:
		}
		for i := 0; i < 16; i++ {
			if err := snd.Queue(gen.NextUplink(), netip.AddrPort{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := snd.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Decapped uplink reaches the SGi sink as plain IP from the UE.
	buf := make([]byte, 2048)
	sgiSink.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, _, err := sgiSink.ReadFrom(buf)
	if err != nil {
		t.Fatalf("nothing reached the SGi sink: %v (egress sent=%d errs=%d noroute=%d)",
			err, stats.egressSent.Load(), stats.egressErrs.Load(), stats.egressNoRoute.Load())
	}
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(buf[:n]); err != nil {
		t.Fatalf("SGi sink got a non-IP datagram: %v", err)
	}
	if ip.Src != ueAddr {
		t.Fatalf("SGi sink datagram src %08x, want UE %08x", ip.Src, ueAddr)
	}

	// Downlink injected at the SGi side comes back wrapped in the FAR's
	// tunnel toward this socket (the rx path learned gnbAddr → here).
	readDownlinkTEID := func() uint32 {
		t.Helper()
		down := gen.DownlinkFor(users[0])
		if _, err := sgiSink.WriteTo(down.Bytes(), gtpuConn.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		down.Free()
		dl := make([]byte, 2048)
		dconn.SetReadDeadline(time.Now().Add(10 * time.Second))
		for {
			n, err := dconn.Read(dl)
			if err != nil {
				t.Fatalf("downlink never reached the gNB endpoint: %v (noroute=%d)", err, stats.egressNoRoute.Load())
			}
			teid, _, perr := gtp.ParseOuter(dl[:n])
			if perr != nil {
				continue // stray uplink echo
			}
			return teid
		}
	}
	if got := readDownlinkTEID(); got != gnbTEID {
		t.Fatalf("downlink TEID %#x, want the FAR's %#x", got, gnbTEID)
	}

	// Modification: rewrite the tunnel TEID (same endpoint) and slash the
	// uplink rate so policing becomes observable.
	if err := smf.Modify(&pfcp.SessionRequest{
		SEID: seid,
		UpdateFARs: []pfcp.FAR{{ID: 1, DestinationInterface: pfcp.InterfaceAccess,
			OuterHeaderCreation: true, TEID: gnbTEID + 1, Addr: gnbAddr}},
		UpdateQERs: []pfcp.QER{{ID: 1, MBRUplinkKbps: 64, MBRDownlinkKbps: 64}},
	}); err != nil {
		t.Fatalf("modify: %v", err)
	}

	// The new tunnel shows on the next downlink. The data plane applies
	// the epoch bump on its next sync, so poll briefly.
	modDeadline := time.After(10 * time.Second)
	for {
		if got := readDownlinkTEID(); got == gnbTEID+1 {
			break
		}
		select {
		case <-modDeadline:
			t.Fatalf("downlink TEID never switched to the updated FAR's %#x", gnbTEID+1)
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Policing: at 64 kbps the uplink bursts must start dying in the
	// token bucket.
	dropped0 := node.Slice(0).Data().Dropped.Load()
	polDeadline := time.After(10 * time.Second)
	for node.Slice(0).Data().Dropped.Load() == dropped0 {
		select {
		case <-polDeadline:
			t.Fatalf("no policing drops at 64 kbps (forwarded=%d)", node.Slice(0).Data().Forwarded.Load())
		default:
		}
		for i := 0; i < 16; i++ {
			if err := snd.Queue(gen.NextUplink(), netip.AddrPort{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := snd.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Deletion: the session, its user and its steering entry are gone;
	// further uplink for the old F-TEID is unknown at the demux.
	if err := smf.Delete(seid); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if got := upf.Sessions(); got != 0 {
		t.Fatalf("sessions after delete = %d", got)
	}
	unknown0 := node.Demux().Unknown.Load()
	delDeadline := time.After(10 * time.Second)
	for node.Demux().Unknown.Load() == unknown0 {
		select {
		case <-delDeadline:
			t.Fatal("uplink for a deleted session still routed")
		default:
		}
		for i := 0; i < 8; i++ {
			if err := snd.Queue(gen.NextUplink(), netip.AddrPort{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := snd.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(stop)
	time.Sleep(50 * time.Millisecond)
}
