package main

import (
	"net"
	"testing"
	"time"

	"pepc"
	"pepc/internal/sctp"
	"pepc/internal/workload"
)

// TestPepcdOverRealUDP is the daemon-level integration test: a node
// serving S1AP-over-SCTP and GTP-U on real loopback UDP sockets, driven
// the same way cmd/enbsim drives it — full attach with mutual
// authentication, then uplink traffic through the demux and data plane.
func TestPepcdOverRealUDP(t *testing.T) {
	// Node with backends, as main() builds it.
	node := pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: 256})
	hss := pepc.NewHSS()
	hss.ProvisionRange(1, 100, 50e6, 100e6)
	node.AttachProxy(pepc.NewProxy(hss, pepc.NewPCRF()))

	stop := make(chan struct{})
	defer close(stop)
	go node.Slice(0).RunData(stop)
	go drainEgress(node.Slice(0), stop)

	s1apConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	gtpuConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	go serveS1AP(node, s1apConn, stop)
	go serveGTPU(node, gtpuConn, stop)

	// eNodeB side, as cmd/enbsim does it.
	conn, err := net.Dial("udp", s1apConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	assoc, err := pepc.SCTPDial(sctp.NewUDPWire(conn), pepc.SCTPConfig{Tag: 0x77})
	if err != nil {
		t.Fatalf("sctp dial over UDP: %v", err)
	}
	defer assoc.Close()

	base := pepc.NewENB(0xC0A83201, 1, 0x10, assoc)
	const ues = 5
	users := make([]workload.User, 0, ues)
	for i := 1; i <= ues; i++ {
		ue := pepc.NewUE(uint64(i))
		if err := base.Attach(ue); err != nil {
			t.Fatalf("attach %d over UDP: %v", i, err)
		}
		users = append(users, workload.User{IMSI: ue.IMSI, UplinkTEID: ue.UplinkTEID, UEAddr: ue.UEAddr})
	}

	// Uplink traffic over the GTP-U socket. Loopback UDP silently drops
	// under CPU contention (socket buffer overflow is invisible to the
	// sender), so the test is a closed loop: keep offering batches until
	// the data plane has forwarded the target count.
	dconn, err := net.Dial("udp", gtpuConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: base.Addr}, users)
	const want = 500
	deadline := time.After(20 * time.Second)
	sent := 0
	for node.Slice(0).Data().Forwarded.Load() < want {
		select {
		case <-deadline:
			t.Fatalf("forwarded only %d of %d after %d sent (missed=%d dropped=%d unknown=%d)",
				node.Slice(0).Data().Forwarded.Load(), want, sent,
				node.Slice(0).Data().Missed.Load(), node.Slice(0).Data().Dropped.Load(),
				node.Demux().Unknown.Load())
		default:
		}
		for i := 0; i < 32; i++ {
			b := gen.NextUplink()
			if _, err := dconn.Write(b.Bytes()); err != nil {
				t.Fatal(err)
			}
			b.Free()
			sent++
		}
		time.Sleep(2 * time.Millisecond) // let the reader and workers drain
	}
}
