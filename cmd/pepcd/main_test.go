package main

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"strings"

	"pepc"
	"pepc/internal/gtp"
	"pepc/internal/hdr"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
	"pepc/internal/sockio"
	"pepc/internal/workload"
)

// TestPepcdOverRealUDP is the daemon-level integration test: a node
// serving S1AP-over-SCTP and GTP-U on real loopback UDP sockets, driven
// the same way cmd/enbsim drives it — full attach with mutual
// authentication, then a vectorized uplink burst through the batched rx
// path, the demux, the data plane and the batched egress path out to an
// SGi sink, and a downlink packet back through the learned eNodeB tunnel
// endpoint.
func TestPepcdOverRealUDP(t *testing.T) {
	// Node with backends, as main() builds it.
	node := pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: 256})
	hss := pepc.NewHSS()
	hss.ProvisionRange(1, 100, 50e6, 100e6)
	node.AttachProxy(pepc.NewProxy(hss, pepc.NewPCRF()))

	stop := make(chan struct{})
	stats := &wireStats{}
	go node.Slice(0).RunData(stop)

	// SGi sink: where decapsulated uplink should come out.
	sgiSink, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer sgiSink.Close()
	sgi := sgiSink.LocalAddr().(*net.UDPAddr).AddrPort()

	gtpuConn, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	gtpuIO, err := sockio.NewConn(gtpuConn.(*net.UDPConn))
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	peers := sockio.NewPeerTable()
	lat := hdr.New()
	go runQueueEgress([]*pepc.Slice{node.Slice(0)}, gtpuIO, peers, sgi, 8, time.Millisecond, lat, stats, stop)
	go runGTPURx(node, gtpuIO, pool, peers, 16, true, stop)

	s1apConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	go serveS1AP(node, s1apConn, stats, stop)

	// eNodeB side, as cmd/enbsim does it.
	conn, err := net.Dial("udp", s1apConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	assoc, err := pepc.SCTPDial(sctp.NewUDPWire(conn), pepc.SCTPConfig{Tag: 0x77})
	if err != nil {
		t.Fatalf("sctp dial over UDP: %v", err)
	}
	defer assoc.Close()

	base := pepc.NewENB(0xC0A83201, 1, 0x10, assoc)
	const ues = 5
	users := make([]workload.User, 0, ues)
	for i := 1; i <= ues; i++ {
		ue := pepc.NewUE(uint64(i))
		if err := base.Attach(ue); err != nil {
			t.Fatalf("attach %d over UDP: %v", i, err)
		}
		users = append(users, workload.User{IMSI: ue.IMSI, UplinkTEID: ue.UplinkTEID, UEAddr: ue.UEAddr})
	}

	// Uplink bursts over the GTP-U socket, vectorized as cmd/enbsim's
	// burst mode sends them. Loopback UDP silently drops under CPU
	// contention (socket buffer overflow is invisible to the sender), so
	// the test is a closed loop: keep offering bursts until the data
	// plane has forwarded the target count.
	dconn, err := net.Dial("udp4", gtpuIO.LocalAddrPort().String())
	if err != nil {
		t.Fatal(err)
	}
	dio, err := sockio.NewConn(dconn.(*net.UDPConn))
	if err != nil {
		t.Fatal(err)
	}
	snd := sockio.NewSender(dio, 16, time.Hour)
	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: base.Addr}, users)
	want := uint64(500)
	if testing.Short() {
		want = 100
	}
	deadline := time.After(20 * time.Second)
	sent := 0
	for node.Slice(0).Data().Forwarded.Load() < want {
		select {
		case <-deadline:
			t.Fatalf("forwarded only %d of %d after %d sent (missed=%d dropped=%d unknown=%d noroute=%d)",
				node.Slice(0).Data().Forwarded.Load(), want, sent,
				node.Slice(0).Data().Missed.Load(), node.Slice(0).Data().Dropped.Load(),
				node.Demux().Unknown.Load(), stats.egressNoRoute.Load())
		default:
		}
		for i := 0; i < 32; i++ {
			if err := snd.Queue(gen.NextUplink(), netip.AddrPort{}); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		if err := snd.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the reader and workers drain
	}
	if sockio.Batched() {
		st := dio.Stats()
		if st.TxCalls >= st.TxPackets {
			t.Fatalf("sender made %d syscalls for %d packets; bursts were not vectorized", st.TxCalls, st.TxPackets)
		}
	}

	// Decapsulated uplink must actually arrive at the SGi next-hop.
	buf := make([]byte, 2048)
	sgiSink.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, _, err := sgiSink.ReadFrom(buf)
	if err != nil {
		t.Fatalf("nothing reached the SGi sink: %v (egress sent=%d errs=%d noroute=%d)",
			err, stats.egressSent.Load(), stats.egressErrs.Load(), stats.egressNoRoute.Load())
	}
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(buf[:n]); err != nil {
		t.Fatalf("SGi sink got a non-IP datagram: %v", err)
	}
	if ip.Src != users[0].UEAddr && ip.Protocol != pkt.ProtoUDP {
		t.Fatalf("SGi sink datagram not a decapped UE packet: src=%08x proto=%d", ip.Src, ip.Protocol)
	}

	// Downlink: plain IP toward a UE address, injected from the SGi side,
	// must come back GTP-U encapsulated to the eNodeB endpoint the rx
	// path learned (this very socket).
	down := gen.DownlinkFor(users[0])
	if _, err := sgiSink.WriteTo(down.Bytes(), gtpuConn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	down.Free()
	dl := make([]byte, 2048)
	dconn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		n, err := dconn.Read(dl)
		if err != nil {
			t.Fatalf("downlink never reached the eNodeB endpoint: %v", err)
		}
		teid, _, perr := gtp.ParseOuter(dl[:n])
		if perr != nil {
			continue // stray uplink echo etc.
		}
		if teid == 0 {
			t.Fatal("downlink GTP-U with zero TEID")
		}
		break
	}

	// With -lat armed, the rx stamp must have flowed through the slice
	// to the egress flush: the wire-to-wire histogram is populated and
	// the stats-line suffix renders the tail.
	if lat.Count() == 0 {
		t.Fatal("wire-to-wire latency histogram recorded nothing despite rx stamping")
	}
	if suffix := latStatsSuffix([]*hdr.Histogram{lat}); !strings.Contains(suffix, "p99=") {
		t.Fatalf("latStatsSuffix = %q, want p50/p99/p999 rendering", suffix)
	}
	if latStatsSuffix(nil) != "" || latStatsSuffix([]*hdr.Histogram{hdr.New()}) != "" {
		t.Fatal("latStatsSuffix must be empty when -lat is off or nothing recorded")
	}

	// Clean shutdown: stop everything and let the rx loop close the
	// socket; a second burst must not panic anything.
	close(stop)
	time.Sleep(50 * time.Millisecond)
	snd.Close()
}

// TestPepcdMultiQueue exercises the multi-queue wire path end to end: a
// two-slice node behind a two-queue SO_REUSEPORT group wired by
// startWirePlanes, driven from two source sockets. Uplink for both
// slices must forward to the SGi sink regardless of which queue the
// kernel lands each datagram on, and with cBPF flow steering attached
// both queues must have carried traffic. Run under -race this is the
// concurrency guard for the per-queue rx/egress loops sharing only the
// PeerTable and conn stats.
func TestPepcdMultiQueue(t *testing.T) {
	node := pepc.NewNode(
		pepc.SliceConfig{ID: 1, UserHint: 64},
		pepc.SliceConfig{ID: 2, UserHint: 64},
	)
	stop := make(chan struct{})
	stats := &wireStats{}
	for i := 0; i < node.NumSlices(); i++ {
		go node.Slice(i).RunData(stop)
	}

	sgiSink, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	defer sgiSink.Close()
	sgi := sgiSink.LocalAddr().(*net.UDPAddr).AddrPort()

	group, err := sockio.ListenGroup("udp4", "127.0.0.1:0", 2)
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	peers := sockio.NewPeerTable()
	lats := startWirePlanes(node, group, pool, peers, sgi, 16, 8, time.Millisecond, true, stats, stop)

	// Users on both slices, demux-registered, as AttachUser wires them.
	const perSlice = 4
	var users []workload.User
	for si := 0; si < node.NumSlices(); si++ {
		for i := 0; i < perSlice; i++ {
			imsi := uint64(100*si + i + 1)
			res, err := node.AttachUser(si, pepc.AttachSpec{
				IMSI: imsi, ENBAddr: 0xC0A83201,
				DownlinkTEID: 0x0200_0000 | uint32(100*si+i+1),
				ECGI:         1, TAI: 1,
			})
			if err != nil {
				t.Fatalf("attach slice %d user %d: %v", si, i, err)
			}
			users = append(users, workload.User{IMSI: imsi, UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr})
		}
	}

	// Two traffic sources (enbsim -sources 2): distinct local ports so the
	// kernel-hash fallback can spread them too.
	var senders []*sockio.Sender
	for s := 0; s < 2; s++ {
		sc, err := net.Dial("udp4", group.LocalAddrPort().String())
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		sio, err := sockio.NewConn(sc.(*net.UDPConn))
		if err != nil {
			t.Fatal(err)
		}
		senders = append(senders, sockio.NewSender(sio, 16, time.Hour))
	}
	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: 0xC0A83201}, users)

	forwarded := func() uint64 {
		var total uint64
		for i := 0; i < node.NumSlices(); i++ {
			total += node.Slice(i).Data().Forwarded.Load()
		}
		return total
	}
	want := uint64(200)
	if testing.Short() {
		want = 50
	}
	deadline := time.After(20 * time.Second)
	for forwarded() < want {
		select {
		case <-deadline:
			t.Fatalf("forwarded only %d of %d (slice0=%d slice1=%d unknown=%d noroute=%d)",
				forwarded(), want,
				node.Slice(0).Data().Forwarded.Load(), node.Slice(1).Data().Forwarded.Load(),
				node.Demux().Unknown.Load(), stats.egressNoRoute.Load())
		default:
		}
		for i, snd := range senders {
			for j := 0; j < 16; j++ {
				if err := snd.Queue(gen.NextUplink(), netip.AddrPort{}); err != nil {
					t.Fatalf("source %d: %v", i, err)
				}
			}
			if err := snd.Flush(); err != nil {
				t.Fatalf("source %d: %v", i, err)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Both slices must have carried traffic (the generator round-robins
	// users across them), and decapped uplink must reach the SGi sink.
	for i := 0; i < node.NumSlices(); i++ {
		if node.Slice(i).Data().Forwarded.Load() == 0 {
			t.Fatalf("slice %d forwarded nothing", i)
		}
	}
	buf := make([]byte, 2048)
	sgiSink.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, _, err := sgiSink.ReadFrom(buf); err != nil {
		t.Fatalf("nothing reached the SGi sink: %v (egress sent=%d errs=%d noroute=%d)",
			err, stats.egressSent.Load(), stats.egressErrs.Load(), stats.egressNoRoute.Load())
	}

	// The per-queue histograms together must have seen the forwarded
	// traffic (whichever queues it landed on).
	merged := hdr.New()
	for _, h := range lats {
		merged.Merge(h)
	}
	if merged.Count() == 0 {
		t.Fatal("no wire-to-wire latency recorded across any queue")
	}

	// With flow steering, sequential TEID allocation spans both residues,
	// so both queues must have received packets.
	if group.Size() == 2 && group.Steered() {
		for q := 0; q < group.Size(); q++ {
			if group.QueueStats(q).RxPackets == 0 {
				t.Fatalf("queue %d received no packets despite flow steering", q)
			}
		}
	}

	close(stop)
	time.Sleep(50 * time.Millisecond)
	for _, snd := range senders {
		snd.Close()
	}
}

// TestS1APPeerEviction covers the serveS1AP satellite: when an
// association's serving goroutine exits, the peer entry is evicted so the
// same remote address can attach again with a fresh association.
func TestS1APPeerEviction(t *testing.T) {
	node := pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: 64})
	hss := pepc.NewHSS()
	hss.ProvisionRange(1, 100, 50e6, 100e6)
	node.AttachProxy(pepc.NewProxy(hss, pepc.NewPCRF()))

	stop := make(chan struct{})
	defer close(stop)
	go node.Slice(0).RunData(stop)

	s1apConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	stats := &wireStats{}
	go serveS1AP(node, s1apConn, stats, stop)

	// An eNodeB restart: the S1AP source address (IP and port) stays the
	// same across rounds, but each round is a fresh socket and a fresh
	// association. Without eviction, round 2's INIT would be queued on the
	// dead round-1 wire and the handshake would stall.
	raddr, err := net.ResolveUDPAddr("udp", s1apConn.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	var laddr *net.UDPAddr
	for round := 0; round < 2; round++ {
		conn, err := net.DialUDP("udp", laddr, raddr)
		if err != nil {
			t.Fatalf("round %d: dial: %v", round, err)
		}
		laddr = conn.LocalAddr().(*net.UDPAddr)

		type dialRes struct {
			a   *sctp.Assoc
			err error
		}
		ch := make(chan dialRes, 1)
		go func() {
			a, err := pepc.SCTPDial(sctp.NewUDPWire(conn), pepc.SCTPConfig{Tag: uint32(0x100 + round)})
			ch <- dialRes{a, err}
		}()
		var assoc *sctp.Assoc
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatalf("round %d: sctp dial: %v", round, r.err)
			}
			assoc = r.a
		case <-time.After(15 * time.Second):
			t.Fatalf("round %d: handshake stalled — stale peer entry not evicted", round)
		}

		base := pepc.NewENB(0xC0A83201, 1, 0x10, assoc)
		ue := pepc.NewUE(uint64(10 + round))
		if err := base.Attach(ue); err != nil {
			t.Fatalf("round %d: attach: %v", round, err)
		}
		assoc.Close()
		conn.Close()
		// Give the serving goroutine time to exit and report itself gone.
		time.Sleep(300 * time.Millisecond)
	}
}
