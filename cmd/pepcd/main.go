// Command pepcd runs a PEPC node: it instantiates slices, wires the
// in-process HSS/PCRF backends through the node proxy, listens for
// S1AP-over-SCTP signaling on a UDP socket (one association per eNodeB),
// and forwards GTP-U user traffic received on a second UDP socket.
//
// Usage:
//
//	pepcd -slices 2 -s1ap :36412 -gtpu :2152 -subscribers 100000
//	pepcd -config operator.json            # slices + PCC rules from file
//
// Pair it with cmd/enbsim, which attaches UEs over the same wire format
// and sources uplink traffic.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"pepc"
	"pepc/internal/core"
	"pepc/internal/gtp"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
)

func main() {
	slices := flag.Int("slices", 1, "number of PEPC slices")
	s1apAddr := flag.String("s1ap", ":36412", "UDP listen address for S1AP-over-SCTP signaling")
	gtpuAddr := flag.String("gtpu", ":2152", "UDP listen address for GTP-U user traffic")
	subscribers := flag.Int("subscribers", 100_000, "subscribers to provision in the HSS (IMSIs from 1)")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval")
	configPath := flag.String("config", "", "operator configuration file (JSON); overrides -slices")
	flag.Parse()

	var node *pepc.Node
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatalf("pepcd: %v", err)
		}
		opCfg, err := core.LoadOperatorConfig(f)
		f.Close()
		if err != nil {
			log.Fatalf("pepcd: %v", err)
		}
		node, err = core.BuildNode(opCfg)
		if err != nil {
			log.Fatalf("pepcd: %v", err)
		}
	} else {
		cfgs := make([]pepc.SliceConfig, *slices)
		for i := range cfgs {
			cfgs[i] = pepc.SliceConfig{ID: i + 1, UserHint: *subscribers / *slices}
		}
		node = pepc.NewNode(cfgs...)
	}

	hss := pepc.NewHSS()
	hss.ProvisionRange(1, *subscribers, 50e6, 100e6)
	pcrf := pepc.NewPCRF()
	node.AttachProxy(pepc.NewProxy(hss, pcrf))

	stop := make(chan struct{})

	// Data planes.
	for i := 0; i < node.NumSlices(); i++ {
		go node.Slice(i).RunData(stop)
		go drainEgress(node.Slice(i), stop)
	}

	// Signaling listener: each new peer address becomes one SCTP
	// association served by an S1AP server bound round-robin to a slice.
	s1apConn, err := net.ListenPacket("udp", *s1apAddr)
	if err != nil {
		log.Fatalf("pepcd: s1ap listen: %v", err)
	}
	go serveS1AP(node, s1apConn, stop)

	// User traffic listener.
	gtpuConn, err := net.ListenPacket("udp", *gtpuAddr)
	if err != nil {
		log.Fatalf("pepcd: gtpu listen: %v", err)
	}
	go serveGTPU(node, gtpuConn, stop)

	log.Printf("pepcd: %d slices, %d subscribers, S1AP on %s, GTP-U on %s",
		*slices, *subscribers, *s1apAddr, *gtpuAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			close(stop)
			log.Print("pepcd: shutting down")
			return
		case <-tick.C:
			for i := 0; i < node.NumSlices(); i++ {
				s := node.Slice(i)
				log.Printf("slice %d: users=%d forwarded=%d dropped=%d missed=%d",
					i, s.Users(), s.Data().Forwarded.Load(), s.Data().Dropped.Load(), s.Data().Missed.Load())
			}
		}
	}
}

func drainEgress(s *pepc.Slice, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		b, ok := s.Egress.Dequeue()
		if !ok {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		// A production node would transmit toward the SGi/S1-U networks;
		// the reference daemon accounts and releases.
		b.Free()
	}
}

// serveS1AP accepts one association per remote address over UDP.
func serveS1AP(node *pepc.Node, pc net.PacketConn, stop <-chan struct{}) {
	type peer struct{ wire *demuxWire }
	peers := make(map[string]*peer)
	next := 0
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-stop:
			pc.Close()
			return
		default:
		}
		pc.SetReadDeadline(time.Now().Add(time.Second))
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			continue
		}
		key := from.String()
		p, ok := peers[key]
		if !ok {
			w := newDemuxWire(pc, from)
			p = &peer{wire: w}
			peers[key] = p
			sliceIdx := next % node.NumSlices()
			next++
			go func() {
				assoc, err := pepc.SCTPAccept(w, pepc.SCTPConfig{Tag: uint32(next + 1)})
				if err != nil {
					log.Printf("pepcd: accept from %s: %v", key, err)
					return
				}
				srv, err := node.ServeS1AP(sliceIdx, assoc)
				if err != nil {
					log.Printf("pepcd: bind slice %d: %v", sliceIdx, err)
					return
				}
				log.Printf("pepcd: eNodeB %s -> slice %d", key, sliceIdx)
				if err := srv.Serve(stop); err != nil {
					log.Printf("pepcd: association %s closed: %v", key, err)
				}
			}()
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		p.wire.deliver(pkt)
	}
}

// demuxWire adapts one remote address of a shared PacketConn to the SCTP
// Wire interface.
type demuxWire struct {
	pc   net.PacketConn
	to   net.Addr
	inCh chan []byte
}

func newDemuxWire(pc net.PacketConn, to net.Addr) *demuxWire {
	return &demuxWire{pc: pc, to: to, inCh: make(chan []byte, 1024)}
}

func (w *demuxWire) deliver(b []byte) {
	select {
	case w.inCh <- b:
	default: // drop on overflow; SCTP retransmission recovers
	}
}

// Send implements sctp.Wire.
func (w *demuxWire) Send(b []byte) error {
	_, err := w.pc.WriteTo(b, w.to)
	return err
}

// Recv implements sctp.Wire.
func (w *demuxWire) Recv() ([]byte, error) {
	b, ok := <-w.inCh
	if !ok {
		return nil, sctp.ErrWireClosed
	}
	return b, nil
}

// Close implements sctp.Wire.
func (w *demuxWire) Close() error { return nil }

// serveGTPU reads user packets off the wire and steers them through the
// node demux.
func serveGTPU(node *pepc.Node, pc net.PacketConn, stop <-chan struct{}) {
	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	raw := make([]byte, 64*1024)
	for {
		select {
		case <-stop:
			pc.Close()
			return
		default:
		}
		pc.SetReadDeadline(time.Now().Add(time.Second))
		n, _, err := pc.ReadFrom(raw)
		if err != nil {
			continue
		}
		b := pool.Get()
		if err := b.SetBytes(raw[:n]); err != nil {
			b.Free()
			continue
		}
		// The wire carries the outer IP/UDP/GTP-U stack for uplink and
		// plain IP for downlink; distinguish by a GTP-U peek.
		if _, err := gtp.PeekTEID(b.Bytes()); err == nil {
			node.SteerUplink(b)
		} else {
			node.SteerDownlink(b)
		}
	}
}
