// Command pepcd runs a PEPC node: it instantiates slices, wires the
// in-process HSS/PCRF backends through the node proxy, listens for
// S1AP-over-SCTP signaling on a UDP socket (one association per eNodeB),
// and forwards GTP-U user traffic received on a second UDP socket.
//
// The user-plane path is vectorized end to end: bursts of datagrams land
// directly in pool-backed packet buffers with one recvmmsg per burst, are
// steered in batches through the node demux into the slice rings, and
// egress re-coalesces per destination and leaves with one sendmmsg per
// burst — uplink toward the SGi next-hop, downlink back to the eNodeB
// tunnel endpoint learned from the uplink outer headers.
//
// The wire path scales past one core with -rxqueues N: the GTP-U address
// is served by an SO_REUSEPORT group of N sockets (sockio.Group), each
// with its own rx loop (Receiver + PoolCache + WireSteer) and its own
// egress loop (one coalescing Sender draining the egress rings of the
// slices assigned to that queue round-robin), so rx parsing, demux
// steering, and tx syscalls all run per queue with no shared hot state.
// The only cross-queue structures are the read-mostly PeerTable
// (copy-on-write, wait-free lookups) and the per-conn atomic stats. Where
// the kernel accepts it, a cBPF program steers by flow (GTP TEID mod N,
// IPv4 dst mod N) so one UE's packets stay on one queue; otherwise the
// kernel's 4-tuple hash distributes across source ports.
//
// Usage:
//
//	pepcd -slices 2 -s1ap :36412 -gtpu :2152 -subscribers 100000
//	pepcd -config operator.json            # slices + PCC rules from file
//	pepcd -sgi 10.0.0.2:9000 -rxbatch 32 -linger 100us
//	pepcd -slices 4 -rxqueues 4            # one rx/tx queue per slice
//
// Pair it with cmd/enbsim, which attaches UEs over the same wire format
// and sources uplink traffic.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pepc"
	"pepc/internal/hdr"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
	"pepc/internal/sockio"
)

// wireStats aggregates the daemon-level wire-path counters the per-loop
// components report into.
type wireStats struct {
	// s1apDrops counts signaling datagrams dropped because a peer's
	// delivery queue overflowed (SCTP retransmission recovers them).
	s1apDrops atomic.Uint64
	// egressSent / egressErrs / egressNoRoute count user-plane egress:
	// datagrams transmitted, flushes that failed, and packets dropped
	// because no destination was known (no -sgi next-hop, or an eNodeB
	// tunnel endpoint not yet learned from uplink).
	egressSent    atomic.Uint64
	egressErrs    atomic.Uint64
	egressNoRoute atomic.Uint64
}

func main() {
	slices := flag.Int("slices", 1, "number of PEPC slices")
	s1apAddr := flag.String("s1ap", ":36412", "UDP listen address for S1AP-over-SCTP signaling")
	n4Addr := flag.String("n4", "", "UDP listen address for N4 (PFCP) SMF signaling, e.g. :8805 (empty disables)")
	gtpuAddr := flag.String("gtpu", ":2152", "UDP listen address for GTP-U user traffic")
	subscribers := flag.Int("subscribers", 100_000, "subscribers to provision in the HSS (IMSIs from 1)")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval")
	configPath := flag.String("config", "", "operator configuration file (JSON); overrides -slices")
	sgiAddr := flag.String("sgi", "", "SGi next-hop for decapsulated uplink (host:port; empty drops+counts)")
	rxBatch := flag.Int("rxbatch", sockio.DefaultBatch, "GTP-U receive burst size (datagrams per recvmmsg)")
	txBatch := flag.Int("txbatch", sockio.DefaultBatch, "egress burst size (datagrams per sendmmsg)")
	linger := flag.Duration("linger", sockio.DefaultLinger, "max time a partial egress burst waits for companions")
	rxQueues := flag.Int("rxqueues", 1, "GTP-U rx/tx queues: SO_REUSEPORT sockets, one rx loop and one egress loop each (1 = single socket)")
	recordLat := flag.Bool("lat", false, "record wire-to-wire latency (rx stamp to egress flush) and report p50/p99/p999 in the stats line")
	pprofAddr := flag.String("pprof", "", "net/http/pprof listen address (empty disables)")
	flag.Parse()

	var node *pepc.Node
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			log.Fatalf("pepcd: %v", err)
		}
		opCfg, err := pepc.LoadOperatorConfig(f)
		f.Close()
		if err != nil {
			log.Fatalf("pepcd: %v", err)
		}
		node, err = pepc.BuildNode(opCfg)
		if err != nil {
			log.Fatalf("pepcd: %v", err)
		}
	} else {
		cfgs := make([]pepc.SliceConfig, *slices)
		for i := range cfgs {
			cfgs[i] = pepc.SliceConfig{ID: i + 1, UserHint: *subscribers / *slices}
		}
		node = pepc.NewNode(cfgs...)
	}

	var sgi netip.AddrPort
	if *sgiAddr != "" {
		ap, err := netip.ParseAddrPort(*sgiAddr)
		if err != nil {
			log.Fatalf("pepcd: -sgi: %v", err)
		}
		sgi = ap
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pepcd: pprof on %s", *pprofAddr)
			log.Printf("pepcd: pprof server: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	hss := pepc.NewHSS()
	hss.ProvisionRange(1, *subscribers, 50e6, 100e6)
	pcrf := pepc.NewPCRF()
	node.AttachProxy(pepc.NewProxy(hss, pcrf))

	stop := make(chan struct{})
	stats := &wireStats{}

	// User traffic sockets: an SO_REUSEPORT group of -rxqueues lanes (a
	// single plain socket at 1), each lane owned by one rx loop and one
	// egress loop. Replies must leave from the bound GTP-U port, which
	// every queue of the group shares.
	group, err := sockio.ListenGroup("udp", *gtpuAddr, *rxQueues)
	if err != nil {
		log.Fatalf("pepcd: gtpu listen: %v", err)
	}
	if group.Size() < *rxQueues {
		log.Printf("pepcd: multi-queue rx unavailable on this platform; running %d queue(s)", group.Size())
	}
	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	peers := sockio.NewPeerTable()

	// Data planes, then the wire loops: one rx loop and one egress loop
	// per queue, slices assigned to egress queues round-robin.
	for i := 0; i < node.NumSlices(); i++ {
		go node.Slice(i).RunData(stop)
	}
	lats := startWirePlanes(node, group, pool, peers, sgi, *rxBatch, *txBatch, *linger, *recordLat, stats, stop)

	// Signaling listener: each new peer address becomes one SCTP
	// association served by an S1AP server bound round-robin to a slice.
	s1apConn, err := net.ListenPacket("udp", *s1apAddr)
	if err != nil {
		log.Fatalf("pepcd: s1ap listen: %v", err)
	}
	go serveS1AP(node, s1apConn, stats, stop)

	// N4 listener: the 5G SMF drives sessions over PFCP; the UPF maps
	// them onto the same slices the 4G procedures use.
	var upf *pepc.UPF
	if *n4Addr != "" {
		n4Conn, err := net.ListenPacket("udp", *n4Addr)
		if err != nil {
			log.Fatalf("pepcd: n4 listen: %v", err)
		}
		upf = pepc.NewUPF(node, localIPv4(n4Conn))
		go serveN4(upf, n4Conn, stop)
		log.Printf("pepcd: N4 (PFCP) on %s", *n4Addr)
	}

	mode := "fallback (one datagram per syscall)"
	if sockio.Batched() {
		mode = "recvmmsg/sendmmsg"
	}
	steer := "kernel 4-tuple hash"
	if group.Steered() {
		steer = "cBPF flow steering"
	}
	log.Printf("pepcd: %d slices, %d subscribers, S1AP on %s, GTP-U on %s (%s, rx burst %d, %d queue(s), %s)",
		node.NumSlices(), *subscribers, *s1apAddr, *gtpuAddr, mode, *rxBatch, group.Size(), steer)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			close(stop)
			log.Print("pepcd: shutting down")
			return
		case <-tick.C:
			for i := 0; i < node.NumSlices(); i++ {
				s := node.Slice(i)
				log.Printf("slice %d: users=%d forwarded=%d dropped=%d missed=%d",
					i, s.Users(), s.Data().Forwarded.Load(), s.Data().Dropped.Load(), s.Data().Missed.Load())
			}
			if upf != nil {
				ns := upf.Stats()
				log.Printf("n4: sessions=%d established=%d modified=%d deleted=%d heartbeats=%d rejected=%d",
					upf.Sessions(), ns.Established, ns.Modified, ns.Deleted, ns.Heartbeats, ns.Rejected)
			}
			st := group.Stats()
			log.Printf("wire: rx=%d pkts/%d calls tx=%d pkts/%d calls peers=%d "+
				"egress sent=%d noroute=%d errs=%d s1ap-drops=%d%s%s",
				st.RxPackets, st.RxCalls, st.TxPackets, st.TxCalls, peers.Len(),
				stats.egressSent.Load(), stats.egressNoRoute.Load(),
				stats.egressErrs.Load(), stats.s1apDrops.Load(), queueStatsSuffix(group),
				latStatsSuffix(lats))
		}
	}
}

// startWirePlanes spawns the multi-queue wire path over an open socket
// group: one rx loop per queue, and one egress loop per queue draining
// the egress rings of the slices assigned to it (slice i → queue i mod
// Q). Each queue owns its Receiver, PoolCache, WireSteer, and Sender;
// the PeerTable and per-conn stats are the only cross-queue state. With
// recordLat set, each queue's receiver stamps its rx bursts and each
// queue's sender records rx-stamp→egress-flush latency into a per-queue
// histogram (single writer: the egress loop); the returned slice holds
// one histogram per egress queue for merged readout, nil when disabled.
func startWirePlanes(node *pepc.Node, group *sockio.Group, pool *pkt.Pool, peers *sockio.PeerTable,
	sgi netip.AddrPort, rxBatch, txBatch int, linger time.Duration, recordLat bool,
	stats *wireStats, stop <-chan struct{}) []*hdr.Histogram {
	q := group.Size()
	var lats []*hdr.Histogram
	if recordLat {
		lats = make([]*hdr.Histogram, q)
		for i := range lats {
			lats[i] = hdr.New()
		}
	}
	for qi := 0; qi < q; qi++ {
		var own []*pepc.Slice
		for i := qi; i < node.NumSlices(); i += q {
			own = append(own, node.Slice(i))
		}
		var lat *hdr.Histogram
		if lats != nil {
			lat = lats[qi]
		}
		if len(own) > 0 {
			go runQueueEgress(own, group.Queue(qi), peers, sgi, txBatch, linger, lat, stats, stop)
		}
		go runGTPURx(node, group.Queue(qi), pool, peers, rxBatch, recordLat, stop)
	}
	return lats
}

// latStatsSuffix renders the merged wire-to-wire latency tail appended
// to the wire stats line: " lat p50=… p99=… p999=…" in microseconds.
// Empty when -lat is off or nothing has been recorded yet.
func latStatsSuffix(lats []*hdr.Histogram) string {
	if len(lats) == 0 {
		return ""
	}
	m := hdr.New()
	for _, h := range lats {
		m.Merge(h)
	}
	if m.Empty() {
		return ""
	}
	us := func(v uint64) float64 { return float64(v) / 1e3 }
	return fmt.Sprintf(" lat p50=%.1fµs p99=%.1fµs p999=%.1fµs",
		us(m.Percentile(50)), us(m.Percentile(99)), us(m.Percentile(99.9)))
}

// queueStatsSuffix renders the per-queue rx/tx packet breakdown appended
// to the wire stats line for multi-queue groups (empty at one queue).
func queueStatsSuffix(group *sockio.Group) string {
	if group.Size() <= 1 {
		return ""
	}
	out := " queues="
	for i := 0; i < group.Size(); i++ {
		st := group.QueueStats(i)
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d:%d/%d", i, st.RxPackets, st.TxPackets)
	}
	return out
}

// runGTPURx is one queue's user-plane receive loop: one vectorized read
// lands a burst of datagrams directly in pool buffers (encap headroom
// intact), eNodeB tunnel endpoints are learned from the outer headers,
// and the whole burst steers through the node demux in one pass. With
// flow steering attached, every packet this loop receives belongs to a
// flow pinned to this queue, so the queue's PoolCache and steer scratch
// never see another queue's traffic.
func runGTPURx(node *pepc.Node, conn *sockio.Conn, pool *pkt.Pool, peers *sockio.PeerTable, batch int, stamp bool, stop <-chan struct{}) {
	rcv := sockio.NewReceiver(conn, pool, batch)
	rcv.StampRx(stamp)
	defer rcv.Close()
	ws := node.NewWireSteer(batch, rcv.Cache())
	scratch := make([]*pkt.Buf, 0, batch)
	uc := conn.UDPConn()
	for {
		select {
		case <-stop:
			conn.Close()
			return
		default:
		}
		uc.SetReadDeadline(time.Now().Add(time.Second))
		n, err := rcv.Recv()
		if n == 0 {
			if err == sockio.ErrClosed {
				return
			}
			continue // deadline tick: re-check stop
		}
		for i := 0; i < n; i++ {
			learnPeer(peers, rcv.Buf(i).Bytes(), rcv.From(i))
		}
		scratch = rcv.TakeAll(scratch[:0])
		ws.Steer(scratch)
	}
}

// learnPeer records the outer source address of anything shaped like a
// GTP-U envelope (IPv4 carrying UDP), mapping the eNodeB's tunnel-plane
// IPv4 to the UDP endpoint it actually sends from, so downlink egress can
// address it. A stray learn keyed by a non-eNB source is never looked up.
func learnPeer(peers *sockio.PeerTable, data []byte, from netip.AddrPort) {
	if len(data) < pkt.IPv4HeaderLen+pkt.UDPHeaderLen || data[0]>>4 != 4 || data[9] != pkt.ProtoUDP {
		return
	}
	peers.Learn(binary.BigEndian.Uint32(data[12:16]), from)
}

// runQueueEgress is one queue's egress loop: it drains the egress rings
// of every slice assigned to the queue into a single coalescing Sender on
// the queue's socket, so egress from co-located slices shares sendmmsg
// bursts. Uplink (decapsulated plain IP) goes to the SGi next-hop,
// downlink (re-encapped GTP-U) to the eNodeB whose tunnel address is in
// the outer header, resolved through the wait-free PeerTable. The linger
// budget is enforced from the loop's housekeeping slot with one clock
// read per pass — not one per slice — and the read is skipped entirely
// while nothing is pending.
func runQueueEgress(slices []*pepc.Slice, conn *sockio.Conn, peers *sockio.PeerTable, sgi netip.AddrPort,
	batch int, linger time.Duration, lat *hdr.Histogram, stats *wireStats, stop <-chan struct{}) {
	snd := sockio.NewSender(conn, batch, linger)
	snd.SetLatency(lat)
	defer snd.Close()
	var prevSent, prevErrs uint64
	account := func() {
		if d := snd.Sent - prevSent; d > 0 {
			stats.egressSent.Add(d)
			prevSent = snd.Sent
		}
		if d := snd.Errs - prevErrs; d > 0 {
			stats.egressErrs.Add(d)
			prevErrs = snd.Errs
		}
	}
	queueOne := func(b *pkt.Buf) {
		if b.Meta.Uplink {
			if !sgi.IsValid() {
				stats.egressNoRoute.Add(1)
				snd.Cache().Put(b)
				return
			}
			snd.Queue(b, sgi)
			return
		}
		data := b.Bytes()
		if len(data) < pkt.IPv4HeaderLen {
			stats.egressNoRoute.Add(1)
			snd.Cache().Put(b)
			return
		}
		dst, ok := peers.Lookup(binary.BigEndian.Uint32(data[16:20]))
		if !ok {
			stats.egressNoRoute.Add(1)
			snd.Cache().Put(b)
			return
		}
		snd.Queue(b, dst)
	}
	proc := make([]*pkt.Buf, batch)
	// Bounded park on idle: this is a daemon sharing cores with the data
	// planes, not a pinned benchmark loop.
	const idlePark = 200 * time.Microsecond
	idle := 0
	for {
		select {
		case <-stop:
			account()
			return
		default:
		}
		drained := 0
		for _, s := range slices {
			for {
				m := s.Egress.DequeueBatch(proc)
				if m == 0 {
					break
				}
				drained += m
				for _, b := range proc[:m] {
					queueOne(b)
				}
			}
		}
		if drained > 0 {
			idle = 0
			continue
		}
		// Housekeeping slot: one clock read covers every sender this
		// loop owns (just one today), skipped while nothing lingers.
		if snd.Pending() > 0 {
			snd.FlushExpired(time.Now())
		}
		account()
		// Never take the long park while a partial burst lingers: a
		// 200µs sleep on top of the 100µs linger budget triples the
		// worst-case wait of an already-staged packet, and that is
		// exactly where it shows up — the p99.9 of wire-to-wire
		// latency, not the mean. Yield instead so the next pass can
		// flush the expired batch on time.
		if idle++; idle >= 4 && snd.Pending() == 0 {
			time.Sleep(idlePark)
		} else {
			runtime.Gosched()
		}
	}
}

// n4Batch bounds how many PFCP datagrams one serveN4 pass processes
// before flushing the batched signaling and answering: N modifications
// landing together drain as one grouped procedure batch.
const n4Batch = 64

// localIPv4 extracts the listener's IPv4 as the UPF node identity,
// falling back to loopback for wildcard binds.
func localIPv4(pc net.PacketConn) uint32 {
	if ua, ok := pc.LocalAddr().(*net.UDPAddr); ok {
		if ip4 := ua.IP.To4(); ip4 != nil && !ip4.IsUnspecified() {
			return binary.BigEndian.Uint32(ip4)
		}
	}
	return pkt.IPv4Addr(127, 0, 0, 1)
}

// serveN4 is the PFCP service loop: it gathers a burst of datagrams
// (blocking for the first, then draining whatever is immediately
// queued), handles each, flushes the batched signaling of every touched
// slice once, and only then sends the responses — so a response never
// races the state change it reports.
func serveN4(upf *pepc.UPF, pc net.PacketConn, stop <-chan struct{}) {
	type reply struct {
		to   net.Addr
		resp []byte
	}
	rd := make([]byte, 64*1024)
	replies := make([]reply, 0, n4Batch)
	var respBuf []byte
	for {
		select {
		case <-stop:
			pc.Close()
			return
		default:
		}
		pc.SetReadDeadline(time.Now().Add(time.Second))
		n, from, err := pc.ReadFrom(rd)
		if err != nil {
			continue
		}
		replies = replies[:0]
		respBuf = respBuf[:0]
		for {
			mark := len(respBuf)
			respBuf = upf.Handle(rd[:n], respBuf)
			if len(respBuf) > mark {
				replies = append(replies, reply{to: from, resp: respBuf[mark:]})
			}
			if len(replies) >= n4Batch {
				break
			}
			// Drain whatever else already landed without blocking.
			pc.SetReadDeadline(time.Now())
			if n, from, err = pc.ReadFrom(rd); err != nil {
				break
			}
		}
		upf.Flush()
		for i := range replies {
			pc.WriteTo(replies[i].resp, replies[i].to)
		}
	}
}

// sctpBufSize is the pooled receive-copy size for signaling datagrams;
// every SCTP-over-UDP packet this wire produces fits (the association
// MTU is far below it). Larger datagrams fall back to a one-off
// allocation.
const sctpBufSize = 4096

// serveS1AP accepts one association per remote address over UDP.
// Signaling datagrams are copied into pooled buffers that recycle once
// the association has consumed them, a full per-peer queue counts a drop
// instead of silently discarding, and peers whose serving goroutine
// exited are evicted so a restarting eNodeB re-accepts cleanly.
func serveS1AP(node *pepc.Node, pc net.PacketConn, stats *wireStats, stop <-chan struct{}) {
	peers := make(map[string]*demuxWire)
	gone := make(chan string, 128)
	next := 0
	bufPool := &sync.Pool{New: func() any { b := make([]byte, sctpBufSize); return &b }}
	rd := make([]byte, 64*1024)
	for {
		select {
		case <-stop:
			pc.Close()
			return
		default:
		}
		pc.SetReadDeadline(time.Now().Add(time.Second))
		n, from, err := pc.ReadFrom(rd)
		if err != nil {
			continue
		}
		// Evict peers whose association ended: the serving goroutine
		// reports its key on exit, and removing the entry lets the next
		// datagram from that address start a fresh association. Drained
		// after the read so an INIT from a restarted eNodeB is never
		// matched against an entry already reported gone.
		for {
			select {
			case key := <-gone:
				if w, ok := peers[key]; ok {
					delete(peers, key)
					w.drainRecycle()
				}
				continue
			default:
			}
			break
		}
		key := from.String()
		w, ok := peers[key]
		if !ok {
			w = newDemuxWire(pc, from, bufPool)
			peers[key] = w
			sliceIdx := next % node.NumSlices()
			next++
			tag := uint32(next + 1)
			go func(key string, w *demuxWire) {
				defer func() { gone <- key }()
				assoc, err := pepc.SCTPAccept(w, pepc.SCTPConfig{Tag: tag})
				if err != nil {
					log.Printf("pepcd: accept from %s: %v", key, err)
					return
				}
				srv, err := node.ServeS1AP(sliceIdx, assoc)
				if err != nil {
					log.Printf("pepcd: bind slice %d: %v", sliceIdx, err)
					return
				}
				log.Printf("pepcd: eNodeB %s -> slice %d", key, sliceIdx)
				if err := srv.Serve(stop); err != nil {
					log.Printf("pepcd: association %s closed: %v", key, err)
				}
			}(key, w)
		}
		cp := w.getBuf(n)
		copy(cp, rd[:n])
		if !w.deliver(cp) {
			stats.s1apDrops.Add(1)
			w.recycle(cp)
		}
	}
}

// demuxWire adapts one remote address of a shared PacketConn to the SCTP
// Wire interface. Inbound datagrams are pooled copies: the association
// copies any payload it keeps before asking for the next packet, so each
// buffer recycles when the Recv after it is called.
type demuxWire struct {
	pc   net.PacketConn
	to   net.Addr
	inCh chan []byte
	pool *sync.Pool
	prev []byte // last buffer handed out by Recv, recycled on the next call
}

func newDemuxWire(pc net.PacketConn, to net.Addr, pool *sync.Pool) *demuxWire {
	return &demuxWire{pc: pc, to: to, inCh: make(chan []byte, 1024), pool: pool}
}

// getBuf returns an n-byte buffer, pooled when n fits the pooled size.
func (w *demuxWire) getBuf(n int) []byte {
	if n <= sctpBufSize {
		return (*w.pool.Get().(*[]byte))[:n]
	}
	return make([]byte, n)
}

// recycle returns a pooled buffer; one-off large buffers go to the GC.
func (w *demuxWire) recycle(b []byte) {
	if cap(b) >= sctpBufSize {
		b = b[:cap(b)]
		w.pool.Put(&b)
	}
}

// deliver hands an inbound datagram to the association, reporting whether
// it was accepted (false on queue overflow; SCTP retransmission recovers).
func (w *demuxWire) deliver(b []byte) bool {
	select {
	case w.inCh <- b:
		return true
	default:
		return false
	}
}

// drainRecycle reclaims datagrams still queued when the association ends.
// The buffer last handed out by Recv stays with the exited reader (GC).
func (w *demuxWire) drainRecycle() {
	for {
		select {
		case b := <-w.inCh:
			w.recycle(b)
		default:
			return
		}
	}
}

// Send implements sctp.Wire.
func (w *demuxWire) Send(b []byte) error {
	_, err := w.pc.WriteTo(b, w.to)
	return err
}

// Recv implements sctp.Wire. The previously returned buffer recycles
// here: the association never retains Recv'd bytes past its next Recv.
func (w *demuxWire) Recv() ([]byte, error) {
	if w.prev != nil {
		w.recycle(w.prev)
		w.prev = nil
	}
	b, ok := <-w.inCh
	if !ok {
		return nil, sctp.ErrWireClosed
	}
	w.prev = b
	return b, nil
}

// Close implements sctp.Wire.
func (w *demuxWire) Close() error { return nil }
