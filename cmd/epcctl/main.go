// Command epcctl exercises and inspects a PEPC node in-process: it
// builds a node from flags, performs the requested operation, and prints
// the observable state. It is a demonstration and debugging surface for
// the library — each subcommand corresponds to an operator action the
// paper describes (attach users, trigger signaling storms, migrate
// users, dump charging records, print the state taxonomy).
//
// Usage:
//
//	epcctl attach   -users 1000                 # attach and show identifiers
//	epcctl storm    -users 1000 -events 100000  # synthetic signaling storm
//	epcctl migrate  -users 100 -migrations 50   # migrate users between slices
//	epcctl usage    -users 10 -packets 10000    # traffic + CDR collection
//	epcctl failover -users 1000                 # checkpoint/restore round trip
//	epcctl taxonomy                             # print Table 1
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"pepc"
	"pepc/internal/experiments"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	users := fs.Int("users", 100, "user population")
	events := fs.Int("events", 1000, "signaling events (storm)")
	migrations := fs.Int("migrations", 10, "migrations to run (migrate)")
	packets := fs.Int("packets", 10000, "packets to pass (usage)")
	fs.Parse(os.Args[2:])

	switch cmd {
	case "taxonomy":
		for _, line := range experiments.Table1().Notes {
			fmt.Println(line)
		}
	case "attach":
		runAttach(*users)
	case "storm":
		runStorm(*users, *events)
	case "migrate":
		runMigrate(*users, *migrations)
	case "usage":
		runUsage(*users, *packets)
	case "failover":
		runFailover(*users)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: epcctl {attach|storm|migrate|usage|failover|taxonomy} [flags]")
	os.Exit(2)
}

func setup(users, slices int) (*pepc.Node, []workload.User) {
	cfgs := make([]pepc.SliceConfig, slices)
	for i := range cfgs {
		cfgs[i] = pepc.SliceConfig{ID: i + 1, UserHint: users}
	}
	node := pepc.NewNode(cfgs...)
	hss := pepc.NewHSS()
	hss.ProvisionRange(1, users, 10e6, 50e6)
	node.AttachProxy(pepc.NewProxy(hss, pepc.NewPCRF()))
	pop := make([]workload.User, users)
	for i := 0; i < users; i++ {
		res, err := node.AttachUser(i%slices, pepc.AttachSpec{
			IMSI: uint64(i + 1), ENBAddr: pkt.IPv4Addr(192, 168, 0, 1), DownlinkTEID: uint32(i + 1),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "epcctl: attach %d: %v\n", i+1, err)
			os.Exit(1)
		}
		pop[i] = workload.User{IMSI: uint64(i + 1), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
	}
	for i := 0; i < slices; i++ {
		node.Slice(i).Data().SyncUpdates()
	}
	return node, pop
}

func runAttach(users int) {
	start := time.Now()
	node, pop := setup(users, 1)
	fmt.Printf("attached %d users in %.3fs (full HSS auth + Gx session each)\n",
		users, time.Since(start).Seconds())
	show := 5
	if users < show {
		show = users
	}
	for _, u := range pop[:show] {
		fmt.Printf("  imsi=%d uplink-teid=%#x ue-addr=%s\n", u.IMSI, u.UplinkTEID, pkt.FormatIPv4(u.UEAddr))
	}
	fmt.Printf("slice now holds %d users\n", node.Slice(0).Users())
}

func runStorm(users, events int) {
	node, pop := setup(users, 1)
	cp := node.Slice(0).Control()
	sg := workload.NewSignalingGen(workload.EventS1Handover, pop)
	start := time.Now()
	for i := 0; i < events; i++ {
		ev := sg.Next()
		addr, teid, ecgi := sg.NextHandoverTarget()
		if err := cp.S1Handover(ev.IMSI, addr, teid, ecgi); err != nil {
			fmt.Fprintf(os.Stderr, "epcctl: handover: %v\n", err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("processed %d handover events in %.3fs (%.0f events/s)\n",
		events, elapsed.Seconds(), float64(events)/elapsed.Seconds())
}

func runMigrate(users, migrations int) {
	node, pop := setup(users, 2)
	start := time.Now()
	for i := 0; i < migrations; i++ {
		u := pop[i%len(pop)]
		from := 0
		if i%2 == 1 {
			from = 1
		}
		src, _ := node.Demux().LookupSliceByIMSI(u.IMSI)
		_ = from
		dst := 1 - src
		if err := node.Scheduler().MigrateUser(u.IMSI, src, dst); err != nil {
			fmt.Fprintf(os.Stderr, "epcctl: migrate %d: %v\n", u.IMSI, err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("migrated %d users in %.3fs (%.0f migrations/s)\n",
		migrations, elapsed.Seconds(), float64(migrations)/elapsed.Seconds())
	fmt.Printf("slice 0: %d users, slice 1: %d users\n",
		node.Slice(0).Users(), node.Slice(1).Users())
}

func runFailover(users int) {
	node, _ := setup(users, 1)
	var buf bytes.Buffer
	start := time.Now()
	n, err := node.Slice(0).Checkpoint(&buf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "epcctl: checkpoint: %v\n", err)
		os.Exit(1)
	}
	ckptTime := time.Since(start)
	recovery := pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: users})
	start = time.Now()
	restored, err := recovery.Slice(0).RestoreCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		fmt.Fprintf(os.Stderr, "epcctl: restore: %v\n", err)
		os.Exit(1)
	}
	registered, _ := recovery.RegisterRestored(0)
	fmt.Printf("checkpointed %d users (%d bytes) in %v; restored %d and registered %d in %v\n",
		n, buf.Len(), ckptTime.Round(time.Microsecond), restored, registered,
		time.Since(start).Round(time.Microsecond))
}

func runUsage(users, packets int) {
	node, pop := setup(users, 1)
	s := node.Slice(0)
	gen := pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: s.Config().CoreAddr}, pop)
	batch := make([]*pepc.Buf, 0, 32)
	for sent := 0; sent < packets; {
		batch = batch[:0]
		for i := 0; i < 32 && sent+len(batch) < packets; i++ {
			batch = append(batch, gen.NextUplink())
		}
		s.Data().ProcessUplinkBatch(batch, sim.Now())
		sent += len(batch)
		for {
			b, ok := s.Egress.Dequeue()
			if !ok {
				break
			}
			b.Free()
		}
	}
	fmt.Printf("passed %d uplink packets (forwarded=%d dropped=%d)\n",
		packets, s.Data().Forwarded.Load(), s.Data().Dropped.Load())
	show := 5
	if users < show {
		show = users
	}
	for _, u := range pop[:show] {
		cdr, err := s.Control().CollectUsage(u.IMSI, sim.Now())
		if err != nil {
			fmt.Fprintf(os.Stderr, "epcctl: usage: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  %v\n", cdr)
	}
}
