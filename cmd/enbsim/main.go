// Command enbsim emulates an eNodeB against a running pepcd: it
// establishes an S1AP-over-SCTP association over UDP, attaches a batch of
// UEs through the full authentication procedure, then sources GTP-U
// uplink traffic for them at a configurable rate. Traffic leaves in
// vectorized bursts (-burst datagrams per sendmmsg where the platform
// supports it); -burst 1 restores one datagram per syscall.
//
// Usage:
//
//	enbsim -core 127.0.0.1:36412 -gtpu 127.0.0.1:2152 -ues 100 -rate 10000 -duration 10s
package main

import (
	"flag"
	"log"
	"net"
	"net/netip"
	"time"

	"pepc"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
	"pepc/internal/sim"
	"pepc/internal/sockio"
	"pepc/internal/workload"
)

func main() {
	coreAddr := flag.String("core", "127.0.0.1:36412", "pepcd S1AP address")
	gtpuAddr := flag.String("gtpu", "127.0.0.1:2152", "pepcd GTP-U address")
	ues := flag.Int("ues", 100, "UEs to attach (IMSIs from -imsi)")
	imsiBase := flag.Uint64("imsi", 1, "first IMSI")
	rate := flag.Float64("rate", 10_000, "uplink packets/s after attach (0 = attach only)")
	duration := flag.Duration("duration", 10*time.Second, "traffic duration")
	burst := flag.Int("burst", sockio.DefaultBatch, "uplink burst size (datagrams per send syscall)")
	flag.Parse()

	// Signaling association.
	conn, err := net.Dial("udp", *coreAddr)
	if err != nil {
		log.Fatalf("enbsim: dial s1ap: %v", err)
	}
	assoc, err := pepc.SCTPDial(sctp.NewUDPWire(conn), pepc.SCTPConfig{Tag: 0x11})
	if err != nil {
		log.Fatalf("enbsim: sctp: %v", err)
	}
	defer assoc.Close()

	base := pepc.NewENB(pkt.IPv4Addr(192, 168, 50, 1), 1, 0x100, assoc)
	users := make([]workload.User, 0, *ues)
	start := time.Now()
	for i := 0; i < *ues; i++ {
		ue := pepc.NewUE(*imsiBase + uint64(i))
		if err := base.Attach(ue); err != nil {
			log.Fatalf("enbsim: attach imsi %d: %v", ue.IMSI, err)
		}
		users = append(users, workload.User{IMSI: ue.IMSI, UplinkTEID: ue.UplinkTEID, UEAddr: ue.UEAddr})
	}
	elapsed := time.Since(start)
	log.Printf("enbsim: attached %d UEs in %.2fs (%.0f attach/s)",
		*ues, elapsed.Seconds(), float64(*ues)/elapsed.Seconds())

	if *rate <= 0 {
		return
	}

	// User traffic, coalesced into vectorized bursts: the pacer grants a
	// quantum, the sender queues it and flushes in as few kernel
	// crossings as the batch size allows.
	dconn, err := net.Dial("udp", *gtpuAddr)
	if err != nil {
		log.Fatalf("enbsim: dial gtpu: %v", err)
	}
	sconn, err := sockio.NewConn(dconn.(*net.UDPConn))
	if err != nil {
		log.Fatalf("enbsim: gtpu socket: %v", err)
	}
	snd := sockio.NewSender(sconn, *burst, time.Hour) // flushed explicitly per quantum
	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: base.Addr}, users)
	pacer := sim.NewPacer(*rate, 256)
	deadline := time.Now().Add(*duration)
	sent := 0
	for time.Now().Before(deadline) {
		n := pacer.Take(sim.Now(), *burst)
		if n == 0 {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		for i := 0; i < n; i++ {
			if err := snd.Queue(gen.NextUplink(), netip.AddrPort{}); err != nil {
				log.Fatalf("enbsim: send: %v", err)
			}
			sent++
		}
		if err := snd.Flush(); err != nil {
			log.Fatalf("enbsim: flush: %v", err)
		}
	}
	snd.Close()
	st := sconn.Stats()
	perCall := float64(st.TxPackets)
	if st.TxCalls > 0 {
		perCall /= float64(st.TxCalls)
	}
	log.Printf("enbsim: sent %d uplink packets over %s (%d syscalls, %.1f pkts/syscall)",
		sent, *duration, st.TxCalls, perCall)
}
