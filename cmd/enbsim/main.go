// Command enbsim emulates an eNodeB against a running pepcd: it
// establishes an S1AP-over-SCTP association over UDP, attaches a batch of
// UEs through the full authentication procedure, then sources GTP-U
// uplink traffic for them at a configurable rate. Traffic leaves in
// vectorized bursts (-burst datagrams per sendmmsg where the platform
// supports it); -burst 1 restores one datagram per syscall.
//
// -sources N spreads the load over N sender sockets with distinct local
// ports, each sourcing uplink for its own share of the UEs at rate/N
// packets per second — the shape a multi-queue pepcd (-rxqueues)
// balances across its SO_REUSEPORT group, and enough source-port entropy
// for the kernel's 4-tuple hash when cBPF flow steering is unavailable.
//
// Usage:
//
//	enbsim -core 127.0.0.1:36412 -gtpu 127.0.0.1:2152 -ues 100 -rate 10000 -duration 10s
//	enbsim -gtpu 127.0.0.1:2152 -ues 400 -sources 4 -rate 400000
package main

import (
	"flag"
	"log"
	"net"
	"net/netip"
	"sync"
	"time"

	"pepc"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
	"pepc/internal/sim"
	"pepc/internal/sockio"
	"pepc/internal/workload"
)

func main() {
	coreAddr := flag.String("core", "127.0.0.1:36412", "pepcd S1AP address")
	gtpuAddr := flag.String("gtpu", "127.0.0.1:2152", "pepcd GTP-U address")
	ues := flag.Int("ues", 100, "UEs to attach (IMSIs from -imsi)")
	imsiBase := flag.Uint64("imsi", 1, "first IMSI")
	rate := flag.Float64("rate", 10_000, "uplink packets/s after attach (0 = attach only)")
	duration := flag.Duration("duration", 10*time.Second, "traffic duration")
	burst := flag.Int("burst", sockio.DefaultBatch, "uplink burst size (datagrams per send syscall)")
	sources := flag.Int("sources", 1, "GTP-U sender sockets (distinct local ports, rate split evenly)")
	flag.Parse()
	if *sources < 1 {
		*sources = 1
	}

	// Signaling association.
	conn, err := net.Dial("udp", *coreAddr)
	if err != nil {
		log.Fatalf("enbsim: dial s1ap: %v", err)
	}
	assoc, err := pepc.SCTPDial(sctp.NewUDPWire(conn), pepc.SCTPConfig{Tag: 0x11})
	if err != nil {
		log.Fatalf("enbsim: sctp: %v", err)
	}
	defer assoc.Close()

	base := pepc.NewENB(pkt.IPv4Addr(192, 168, 50, 1), 1, 0x100, assoc)
	users := make([]workload.User, 0, *ues)
	start := time.Now()
	for i := 0; i < *ues; i++ {
		ue := pepc.NewUE(*imsiBase + uint64(i))
		if err := base.Attach(ue); err != nil {
			log.Fatalf("enbsim: attach imsi %d: %v", ue.IMSI, err)
		}
		users = append(users, workload.User{IMSI: ue.IMSI, UplinkTEID: ue.UplinkTEID, UEAddr: ue.UEAddr})
	}
	elapsed := time.Since(start)
	log.Printf("enbsim: attached %d UEs in %.2fs (%.0f attach/s)",
		*ues, elapsed.Seconds(), float64(*ues)/elapsed.Seconds())

	if *rate <= 0 {
		return
	}

	// User traffic, coalesced into vectorized bursts: the pacer grants a
	// quantum, the sender queues it and flushes in as few kernel
	// crossings as the batch size allows. With -sources N the UEs split
	// into N shares, each sourced from its own socket (distinct local
	// port) at rate/N packets per second — one goroutine per source, no
	// shared state past the aggregate counters collected at the end.
	nSrc := *sources
	if nSrc > len(users) {
		nSrc = len(users)
	}
	type source struct {
		conn *sockio.Conn
		gen  *workload.TrafficGen
		sent int
	}
	srcs := make([]*source, nSrc)
	for s := 0; s < nSrc; s++ {
		dconn, err := net.Dial("udp", *gtpuAddr)
		if err != nil {
			log.Fatalf("enbsim: dial gtpu: %v", err)
		}
		sconn, err := sockio.NewConn(dconn.(*net.UDPConn))
		if err != nil {
			log.Fatalf("enbsim: gtpu socket: %v", err)
		}
		// Share s sources UEs s, s+nSrc, s+2*nSrc, ...
		var share []workload.User
		for i := s; i < len(users); i += nSrc {
			share = append(share, users[i])
		}
		srcs[s] = &source{
			conn: sconn,
			gen:  workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: base.Addr}, share),
		}
	}
	var wg sync.WaitGroup
	for _, src := range srcs {
		wg.Add(1)
		go func(src *source) {
			defer wg.Done()
			snd := sockio.NewSender(src.conn, *burst, time.Hour) // flushed explicitly per quantum
			defer snd.Close()
			pacer := sim.NewPacer(*rate/float64(nSrc), 256)
			deadline := time.Now().Add(*duration)
			for time.Now().Before(deadline) {
				n := pacer.Take(sim.Now(), *burst)
				if n == 0 {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				for i := 0; i < n; i++ {
					if err := snd.Queue(src.gen.NextUplink(), netip.AddrPort{}); err != nil {
						log.Fatalf("enbsim: send: %v", err)
					}
					src.sent++
				}
				if err := snd.Flush(); err != nil {
					log.Fatalf("enbsim: flush: %v", err)
				}
			}
		}(src)
	}
	wg.Wait()
	sent := 0
	var calls, packets uint64
	for _, src := range srcs {
		sent += src.sent
		st := src.conn.Stats()
		calls += st.TxCalls
		packets += st.TxPackets
	}
	perCall := float64(packets)
	if calls > 0 {
		perCall /= float64(calls)
	}
	log.Printf("enbsim: sent %d uplink packets over %s from %d source(s) (%d syscalls, %.1f pkts/syscall)",
		sent, *duration, nSrc, calls, perCall)
}
