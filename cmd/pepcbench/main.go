// Command pepcbench regenerates the tables and figures of the paper's
// evaluation (§5–§7) and prints the measured series.
//
// Usage:
//
//	pepcbench -fig 5              # regenerate Figure 5
//	pepcbench -fig faults         # robustness: outage sweep + chaos soak
//	pepcbench -table 1            # print Table 1
//	pepcbench -all                # every table and figure
//	pepcbench -all -scale full    # paper-scale populations (slow, GBs)
//	pepcbench -fig 12 -users 500000 -packets 1000000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"pepc"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: a number (4-15) or a name (e.g. faults)")
	table := flag.Int("table", 0, "table number to print (1-2)")
	all := flag.Bool("all", false, "run every table and figure")
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	users := flag.Int("users", 0, "override max user population")
	packets := flag.Int("packets", 0, "override measured packets per point")
	events := flag.Int("events", 0, "override measured signaling events per point")
	fig7Mode := flag.String("fig7", "auto", "figure 7 aggregation: auto, parallel (concurrent workers) or sum (measure-and-sum)")
	fig5Mode := flag.String("fig5", "batched", "figure 5 signaling execution: batched (control fast path) or inline")
	fig6Mode := flag.String("fig6", "batched", "figure 6 signaling execution: batched (control fast path) or inline")
	fig8Mode := flag.String("fig8", "paper", "figure 8 experiment: paper (migration impact) or pktsize (header-engine packet-size sweep)")
	fig14Mode := flag.String("fig14", "paper", "figure 14 sweep: paper (always-on fraction) or population (pointer vs handle state layout)")
	sockioQMode := flag.String("sockioq", "auto", "sockio multi-queue aggregation: auto, parallel (concurrent lanes) or sum (measure-and-sum)")
	clusterMode := flag.String("clustermode", "auto", "cluster experiment aggregation: auto, parallel (concurrent node lanes) or sum (measure-and-sum)")
	faultSeed := flag.Uint64("faultseed", 0, "faults experiment: injector seed (0 = default)")
	faultEpochs := flag.Int("faultepochs", 0, "faults experiment: chaos soak epochs (0 = default)")
	jsonOut := flag.Bool("json", false, "also write each result as machine-readable BENCH_<name>.json")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, n := range pepc.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}

	sc := pepc.QuickScale
	if *scale == "full" {
		sc = pepc.FullScale
	} else if *scale != "quick" {
		fmt.Fprintf(os.Stderr, "pepcbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *users > 0 {
		sc.MaxUsers = *users
	}
	if *packets > 0 {
		sc.PacketsPerPoint = *packets
	}
	if *events > 0 {
		sc.EventsPerPoint = *events
	}
	switch *fig7Mode {
	case "auto", "parallel", "sum":
	default:
		fmt.Fprintf(os.Stderr, "pepcbench: -fig7 must be auto, parallel or sum (got %q)\n", *fig7Mode)
		os.Exit(2)
	}
	sc.Fig7Mode = *fig7Mode
	switch *fig5Mode {
	case "", "batched", "inline":
	default:
		fmt.Fprintf(os.Stderr, "pepcbench: -fig5 must be batched or inline (got %q)\n", *fig5Mode)
		os.Exit(2)
	}
	sc.Fig5Mode = *fig5Mode
	switch *fig6Mode {
	case "", "batched", "inline":
	default:
		fmt.Fprintf(os.Stderr, "pepcbench: -fig6 must be batched or inline (got %q)\n", *fig6Mode)
		os.Exit(2)
	}
	sc.Fig6Mode = *fig6Mode
	switch *fig8Mode {
	case "", "paper", "pktsize":
	default:
		fmt.Fprintf(os.Stderr, "pepcbench: -fig8 must be paper or pktsize (got %q)\n", *fig8Mode)
		os.Exit(2)
	}
	sc.Fig8Mode = *fig8Mode
	switch *fig14Mode {
	case "", "paper", "population":
	default:
		fmt.Fprintf(os.Stderr, "pepcbench: -fig14 must be paper or population (got %q)\n", *fig14Mode)
		os.Exit(2)
	}
	sc.Fig14Mode = *fig14Mode
	switch *sockioQMode {
	case "", "auto", "parallel", "sum":
	default:
		fmt.Fprintf(os.Stderr, "pepcbench: -sockioq must be auto, parallel or sum (got %q)\n", *sockioQMode)
		os.Exit(2)
	}
	sc.SockioQMode = *sockioQMode
	switch *clusterMode {
	case "", "auto", "parallel", "sum":
	default:
		fmt.Fprintf(os.Stderr, "pepcbench: -clustermode must be auto, parallel or sum (got %q)\n", *clusterMode)
		os.Exit(2)
	}
	sc.ClusterMode = *clusterMode
	sc.FaultSeed = *faultSeed
	sc.FaultEpochs = *faultEpochs

	var names []string
	switch {
	case *all:
		names = pepc.ExperimentNames()
	case *fig != "":
		name := *fig
		// Bare numbers keep the historical spelling: -fig 5 means fig5.
		if _, err := strconv.Atoi(name); err == nil {
			name = "fig" + name
		}
		names = []string{name}
	case *table != 0:
		names = []string{fmt.Sprintf("table%d", *table)}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, name := range names {
		start := time.Now()
		res, err := pepc.RunExperiment(name, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pepcbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		if *jsonOut {
			if err := writeJSON(name, res); err != nil {
				fmt.Fprintf(os.Stderr, "pepcbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
}

// writeJSON emits one result as BENCH_<name>.json so per-figure series
// can be tracked machine-readably across revisions.
func writeJSON(name string, res pepc.ExperimentResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+name+".json", append(data, '\n'), 0o644)
}
