// Command pepcbench regenerates the tables and figures of the paper's
// evaluation (§5–§7) and prints the measured series.
//
// Usage:
//
//	pepcbench -fig 5              # regenerate Figure 5
//	pepcbench -table 1            # print Table 1
//	pepcbench -all                # every table and figure
//	pepcbench -all -scale full    # paper-scale populations (slow, GBs)
//	pepcbench -fig 12 -users 500000 -packets 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pepc"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (4-15)")
	table := flag.Int("table", 0, "table number to print (1-2)")
	all := flag.Bool("all", false, "run every table and figure")
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	users := flag.Int("users", 0, "override max user population")
	packets := flag.Int("packets", 0, "override measured packets per point")
	events := flag.Int("events", 0, "override measured signaling events per point")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, n := range pepc.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}

	sc := pepc.QuickScale
	if *scale == "full" {
		sc = pepc.FullScale
	} else if *scale != "quick" {
		fmt.Fprintf(os.Stderr, "pepcbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *users > 0 {
		sc.MaxUsers = *users
	}
	if *packets > 0 {
		sc.PacketsPerPoint = *packets
	}
	if *events > 0 {
		sc.EventsPerPoint = *events
	}

	var names []string
	switch {
	case *all:
		names = pepc.ExperimentNames()
	case *fig != 0:
		names = []string{fmt.Sprintf("fig%d", *fig)}
	case *table != 0:
		names = []string{fmt.Sprintf("table%d", *table)}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, name := range names {
		start := time.Now()
		res, err := pepc.RunExperiment(name, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pepcbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}
}
