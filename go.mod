module pepc

go 1.22
