package pepc_test

import (
	"fmt"

	"pepc"
)

// Example shows the minimal library flow: provision a subscriber, bring
// up a node, attach the user through the proxy-backed control plane, and
// inspect the granted session.
func Example() {
	hss := pepc.NewHSS()
	hss.Provision(pepc.Subscriber{
		IMSI:         310_150_123_456_789,
		K:            [16]byte{0x2b, 0x7e, 0x15, 0x16},
		AMBRUplink:   50e6,
		AMBRDownlink: 100e6,
		DefaultQCI:   9,
	})

	node := pepc.NewNode(pepc.SliceConfig{ID: 1})
	node.AttachProxy(pepc.NewProxy(hss, pepc.NewPCRF()))

	res, err := node.AttachUser(0, pepc.AttachSpec{IMSI: 310_150_123_456_789})
	if err != nil {
		fmt.Println("attach failed:", err)
		return
	}
	fmt.Printf("attached: uplink TEID=%#x, slice users=%d\n", res.UplinkTEID, node.Slice(0).Users())
	// Output: attached: uplink TEID=0x11000001, slice users=1
}
