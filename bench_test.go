// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkFigN_/BenchmarkTableN_ target runs the
// corresponding experiment once per iteration at the Quick scale and
// reports the headline values as custom metrics, so
//
//	go test -bench=Fig5 -benchtime=1x
//
// regenerates Figure 5's series. cmd/pepcbench prints the same results
// as readable tables, at Quick or Full scale.
package pepc_test

import (
	"strings"
	"testing"

	"pepc"
)

// benchScale trims Quick further so a default `go test -bench=.` pass
// over all figures completes in minutes.
var benchScale = pepc.ExperimentScale{
	MaxUsers:        100_000,
	PacketsPerPoint: 100_000,
	EventsPerPoint:  1_000,
}

// runFigure executes an experiment b.N times and publishes each series'
// headline point (the last X) as a custom metric.
func runFigure(b *testing.B, name string) {
	b.Helper()
	var res pepc.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = pepc.RunExperiment(name, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			continue
		}
		last := s.Points[len(s.Points)-1]
		metric := sanitizeMetric(s.Name) + "_" + res.YLabel
		b.ReportMetric(last.Y, sanitizeMetric(metric))
	}
	if testing.Verbose() {
		b.Log("\n" + res.Render())
	}
}

func sanitizeMetric(s string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "", "#", "", "%", "pct", "/", "_per_", ":", "_")
	return r.Replace(s)
}

func BenchmarkTable1_StateTaxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := pepc.RunExperiment("table1", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Notes) != 7 {
			b.Fatal("taxonomy rows missing")
		}
	}
}

func BenchmarkTable2_DefaultParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pepc.RunExperiment("table2", benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_DataPlaneComparison(b *testing.B)       { runFigure(b, "fig4") }
func BenchmarkFig5_ThroughputVsUsers(b *testing.B)         { runFigure(b, "fig5") }
func BenchmarkFig6_ThroughputVsSignaling(b *testing.B)     { runFigure(b, "fig6") }
func BenchmarkFig7_ScalingWithDataCores(b *testing.B)      { runFigure(b, "fig7") }
func BenchmarkFig8_MigrationThroughput(b *testing.B)       { runFigure(b, "fig8") }
func BenchmarkFig9_MigrationLatency(b *testing.B)          { runFigure(b, "fig9") }
func BenchmarkFig10_CoresVsSignalingRatio(b *testing.B)    { runFigure(b, "fig10") }
func BenchmarkFig11_AttachRateVsControlCores(b *testing.B) { runFigure(b, "fig11") }
func BenchmarkFig12_SharedStateDesigns(b *testing.B)       { runFigure(b, "fig12") }
func BenchmarkFig13_UpdateBatching(b *testing.B)           { runFigure(b, "fig13") }
func BenchmarkFig14_TwoLevelTables(b *testing.B)           { runFigure(b, "fig14") }
func BenchmarkFig15_IoTCustomization(b *testing.B)         { runFigure(b, "fig15") }

// BenchmarkPipelineUplink measures the PEPC uplink fast path per packet:
// decap, lookup, classify, counters, forward. This is the per-core
// per-packet budget behind every throughput figure.
func BenchmarkPipelineUplink(b *testing.B) {
	s := pepc.NewSlice(pepc.SliceConfig{ID: 1, UserHint: 1 << 16})
	users := make([]pepc.User, 1<<14)
	for i := range users {
		res, err := s.Control().Attach(pepc.AttachSpec{
			IMSI: uint64(i + 1), ENBAddr: 1, DownlinkTEID: uint32(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		users[i] = pepc.User{IMSI: uint64(i + 1), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
	}
	s.Data().SyncUpdates()
	gen := pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: s.Config().CoreAddr}, users)
	batch := make([]*pepc.Buf, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch[0] = gen.NextUplink()
		s.Data().ProcessUplinkBatch(batch, 0)
		drainOne(s)
	}
}

func drainOne(s *pepc.Slice) {
	for {
		buf, ok := s.Egress.Dequeue()
		if !ok {
			return
		}
		buf.Free()
	}
}

// newPipelineBench attaches a population and returns the slice plus a
// generator emitting burst consecutive packets per user (burst=1 is the
// fully interleaved worst case; burst>=4 models per-user flow runs).
func newPipelineBench(b *testing.B, burst int) (*pepc.Slice, *pepc.TrafficGen) {
	b.Helper()
	s := pepc.NewSlice(pepc.SliceConfig{ID: 1, UserHint: 1 << 16})
	users := make([]pepc.User, 1<<14)
	for i := range users {
		res, err := s.Control().Attach(pepc.AttachSpec{
			IMSI: uint64(i + 1), ENBAddr: 1, DownlinkTEID: uint32(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		users[i] = pepc.User{IMSI: uint64(i + 1), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
	}
	s.Data().SyncUpdates()
	gen := pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: s.Config().CoreAddr, Burst: burst}, users)
	return s, gen
}

// benchUplinkBatch measures the uplink fast path over full 32-packet
// batches (ns/op is per packet).
func benchUplinkBatch(b *testing.B, burst int) {
	s, gen := newPipelineBench(b, burst)
	const batchSize = 32
	batch := make([]*pepc.Buf, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = gen.NextUplink()
		}
		s.Data().ProcessUplinkBatch(batch, 0)
		drainOne(s)
	}
}

// benchDownlinkBatch measures the downlink fast path over full 32-packet
// batches (ns/op is per packet).
func benchDownlinkBatch(b *testing.B, burst int) {
	s, gen := newPipelineBench(b, burst)
	const batchSize = 32
	batch := make([]*pepc.Buf, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = gen.NextDownlink()
		}
		s.Data().ProcessDownlinkBatch(batch, 0)
		drainOne(s)
	}
}

// Uniform: every packet in a batch belongs to a different user (run
// length 1, coalescing finds nothing to merge).
func BenchmarkPipelineUplinkBatch32(b *testing.B)   { benchUplinkBatch(b, 1) }
func BenchmarkPipelineDownlinkBatch32(b *testing.B) { benchDownlinkBatch(b, 1) }

// Bursty: eight consecutive packets per user (run length 8), the
// flow-run pattern coalescing exploits.
func BenchmarkPipelineUplinkBursty(b *testing.B)   { benchUplinkBatch(b, 8) }
func BenchmarkPipelineDownlinkBursty(b *testing.B) { benchDownlinkBatch(b, 8) }
