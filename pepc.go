// Package pepc is a Go implementation of PEPC, the high-performance
// software Evolved Packet Core of "A High Performance Packet Core for
// Next Generation Cellular Networks" (SIGCOMM 2017).
//
// PEPC consolidates all state for a user device into a single location —
// a slice — and splits processing into a control thread (signaling:
// attach, handover, policy) and a data thread (GTP-U, PCEF, QoS,
// charging) that share that state under a single-writer lock discipline.
// A PEPC node hosts many slices behind a Demux, a Scheduler that can
// migrate individual users between slices without packet loss, and a
// Proxy that speaks Diameter S6a/Gx to the HSS and PCRF backends.
//
// Quick start:
//
//	node := pepc.NewNode(pepc.SliceConfig{ID: 1})
//	hss := pepc.NewHSS()
//	hss.ProvisionRange(1000, 100, 10e6, 50e6)
//	node.AttachProxy(pepc.NewProxy(hss, pepc.NewPCRF()))
//	res, err := node.AttachUser(0, pepc.AttachSpec{IMSI: 1000})
//	// feed GTP-U traffic into node.Slice(0).Uplink, run the data plane
//	// with node.Slice(0).RunData(stop), read egress from Egress.
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory and experiment index.
package pepc

import (
	"io"
	"time"

	"pepc/internal/cluster"
	"pepc/internal/core"
	"pepc/internal/enb"
	"pepc/internal/experiments"
	"pepc/internal/fault"
	"pepc/internal/hss"
	"pepc/internal/pcef"
	"pepc/internal/pcrf"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
	"pepc/internal/state"
	"pepc/internal/workload"
)

// Core types, re-exported for library consumers.
type (
	// Node is a PEPC server: slices + demux + scheduler + proxy.
	Node = core.Node
	// Slice is one PEPC slice (control thread + data thread + state).
	Slice = core.Slice
	// SliceConfig parameterizes a slice.
	SliceConfig = core.SliceConfig
	// AttachSpec carries attach parameters.
	AttachSpec = core.AttachSpec
	// AttachResult reports granted identifiers.
	AttachResult = core.AttachResult
	// Proxy bridges slices to HSS/PCRF backends over Diameter.
	Proxy = core.Proxy
	// S1APServer terminates eNodeB signaling on a slice control plane.
	S1APServer = core.S1APServer
	// Scheduler manages slices and user migration.
	Scheduler = core.Scheduler
	// Demux steers traffic to slices.
	Demux = core.Demux

	// HSS is the home subscriber server backend.
	HSS = hss.HSS
	// Subscriber is one HSS record.
	Subscriber = hss.Subscriber
	// PCRF is the policy backend.
	PCRF = pcrf.PCRF
	// PCCRule is a policy and charging control rule installed into the
	// PCEF.
	PCCRule = pcef.Rule

	// ENB is the eNodeB emulator.
	ENB = enb.ENB
	// UE is an emulated device.
	UE = enb.UE

	// User is a generator-facing user descriptor.
	User = workload.User
	// TrafficGen generates user-plane packets.
	TrafficGen = workload.TrafficGen
	// TrafficConfig parameterizes traffic generation.
	TrafficConfig = workload.TrafficConfig

	// UEContext is the consolidated per-user state.
	UEContext = state.UE
	// Buf is an mbuf-style packet buffer.
	Buf = pkt.Buf

	// ExperimentScale bounds experiment runtime/memory.
	ExperimentScale = experiments.Scale
	// ExperimentResult is one regenerated table/figure.
	ExperimentResult = experiments.Result

	// CallPolicy bounds proxy backend calls: per-call deadline, bounded
	// retries with backoff and a circuit breaker (DESIGN.md §4.12).
	// Install with Proxy.SetPolicy; the zero value (no policy) keeps the
	// legacy synchronous path.
	CallPolicy = core.CallPolicy
	// ProxyStats counts proxy requests, retries, timeouts, breaker
	// opens and short-circuited calls.
	ProxyStats = core.ProxyStats
	// RecoveryReport summarizes what Slice.RecoverFrom rebuilt after a
	// slice crash: checkpointed users restored, queued updates replayed,
	// detaches completed, signaling events adopted.
	RecoveryReport = core.RecoveryReport
	// UPF is the node's N4 (PFCP) endpoint: an SMF's sessions mapped
	// onto slice users, with modification/deletion riding the batched
	// signaling path. Serve it from a UDP listener with Handle + Flush.
	UPF = core.UPF
	// N4Stats snapshots the UPF's PFCP message counters.
	N4Stats = core.N4Stats
	// FaultInjector is the deterministic, seedable fault injector the
	// chaos soak drives; arm it on a Proxy (SetS6aFaults/SetGxFaults) or
	// a Slice (SetFaults).
	FaultInjector = fault.Injector
	// FaultKind identifies one injectable failure class.
	FaultKind = fault.Kind
	// FaultPlan is a reproducible set of per-kind rates and delays.
	FaultPlan = fault.Plan

	// Cluster fronts N PEPC nodes behind one Maglev table: cluster-wide
	// attach/identifier allocation, batched wire steering, live
	// add/remove rebalancing and checkpoint-based node recovery
	// (DESIGN.md §4.15).
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes a cluster.
	ClusterConfig = cluster.Config
	// ClusterSteerer is the cluster's batched, allocation-free wire
	// steering path: classify once, one Maglev batch pick, run-coalesced
	// hand-off to the owning node's demux.
	ClusterSteerer = cluster.Steerer
	// RebalanceReport summarizes one AddNode/RemoveNode migration.
	RebalanceReport = cluster.RebalanceReport
	// NodeRecoveryReport summarizes a RecoverNode rebuild: slices
	// restored from checkpoints, queued updates replayed, users
	// scattered to their current owners, orphans forgotten.
	NodeRecoveryReport = cluster.RecoveryReport
)

// NewCluster creates a cluster of in-process PEPC nodes behind a Maglev
// table.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// Injectable failure classes, re-exported for soak drivers.
const (
	FaultDiameterDrop  = fault.DiameterDrop
	FaultDiameterDelay = fault.DiameterDelay
	FaultDiameterError = fault.DiameterError
	FaultSCTPLoss      = fault.SCTPLoss
	FaultRingOverflow  = fault.RingOverflow
	FaultWorkerStall   = fault.WorkerStall
	FaultSliceCrash    = fault.SliceCrash
	// FaultRateMax is the always-fire rate denominator.
	FaultRateMax = fault.RateMax
)

// NewFaultInjector creates a disarmed injector; the same seed replays
// the same fault decisions.
func NewFaultInjector(seed uint64) *FaultInjector { return fault.New(seed) }

// FaultEpochPlan derives the deterministic fault plan the chaos soak
// applies for one (seed, epoch) pair over the given kinds.
func FaultEpochPlan(seed uint64, epoch int, maxRate uint32, maxDelay time.Duration, kinds ...FaultKind) FaultPlan {
	return fault.EpochPlan(seed, epoch, maxRate, maxDelay, kinds...)
}

// Table modes for SliceConfig.TableMode.
const (
	TableSingle   = core.TableSingle
	TableTwoLevel = core.TableTwoLevel
)

// NewNode creates a PEPC node with the given slices.
func NewNode(cfgs ...SliceConfig) *Node { return core.NewNode(cfgs...) }

// NewUPF creates the node's N4 endpoint with the given node identity
// (IPv4, host order).
func NewUPF(node *Node, nodeAddr uint32) *UPF { return core.NewUPF(node, nodeAddr) }

// NewSlice creates a standalone slice (no node wrapper).
func NewSlice(cfg SliceConfig) *Slice { return core.NewSlice(cfg) }

// NewHSS creates an empty subscriber database.
func NewHSS() *HSS { return hss.New() }

// NewPCRF creates an empty policy backend.
func NewPCRF() *PCRF { return pcrf.New() }

// NewProxy wires a node proxy to its backends.
func NewProxy(h *HSS, p *PCRF) *Proxy { return core.NewProxy(h, p) }

// EnablePolicyPush subscribes a node to the PCRF's unsolicited Gx rule
// installs (RAR): pushed rules reach the owning slice's PCEF and the
// user's control state.
func EnablePolicyPush(n *Node, p *PCRF) { n.EnablePolicyPush(p) }

// NewS1APServer binds an S1AP server to a slice's control plane and an
// SCTP association. For a slice inside a node prefer Node.ServeS1AP,
// which also registers attached users with the node demux.
func NewS1APServer(s *Slice, assoc *sctp.Assoc) *S1APServer {
	return core.NewS1APServer(s.Control(), assoc)
}

// NewENB creates an eNodeB emulator on an established association.
func NewENB(addr uint32, tai uint16, ecgi uint32, assoc *sctp.Assoc) *ENB {
	return enb.New(addr, tai, ecgi, assoc)
}

// NewUE creates an emulated device whose key matches HSS bulk
// provisioning.
func NewUE(imsi uint64) *UE { return enb.NewUE(imsi) }

// SCTPPipe returns two connected in-memory SCTP wires for in-process
// eNodeB↔core signaling; pass them to SCTPDial/SCTPAccept.
func SCTPPipe(depth int) (*sctp.PipeWire, *sctp.PipeWire) { return sctp.Pipe(depth) }

// SCTPDial initiates an association (eNodeB side).
func SCTPDial(w sctp.Wire, cfg sctp.Config) (*sctp.Assoc, error) { return sctp.Dial(w, cfg) }

// SCTPAccept waits for an association (core side).
func SCTPAccept(w sctp.Wire, cfg sctp.Config) (*sctp.Assoc, error) { return sctp.Accept(w, cfg) }

// SCTPConfig parameterizes an association.
type SCTPConfig = sctp.Config

// NewTrafficGen builds a packet generator over attached users.
func NewTrafficGen(cfg TrafficConfig, users []User) *TrafficGen {
	return workload.NewTrafficGen(cfg, users)
}

// Experiment scales.
var (
	// QuickScale runs every figure in seconds.
	QuickScale = experiments.Quick
	// FullScale approximates the paper's populations.
	FullScale = experiments.Full
)

// RunExperiment regenerates one of the paper's tables or figures by name
// ("table1", "table2", "fig4" … "fig15").
func RunExperiment(name string, sc ExperimentScale) (ExperimentResult, error) {
	return experiments.Run(name, sc)
}

// ExperimentNames lists the regenerable tables and figures.
func ExperimentNames() []string { return experiments.Names() }

// OperatorConfig is the JSON-loadable node description (slices, IoT
// pools, PCC rules).
type OperatorConfig = core.OperatorConfig

// LoadOperatorConfig parses a JSON operator configuration.
func LoadOperatorConfig(r io.Reader) (OperatorConfig, error) {
	return core.LoadOperatorConfig(r)
}

// BuildNode instantiates a node from an operator configuration.
func BuildNode(cfg OperatorConfig) (*Node, error) { return core.BuildNode(cfg) }
