# Developer entry points. `make ci` is what a PR must keep green.

.PHONY: ci build test race bench

ci:
	./scripts/ci.sh

build:
	go build ./...

test:
	go test ./...

# Race-detect the packages carrying the single-writer lock discipline.
race:
	go test -race ./internal/core/ ./internal/state/

bench:
	go test -bench=Pipeline -benchmem -run='^$$' .
