# Developer entry points. `make ci` is what a PR must keep green.

.PHONY: ci build test race bench benchdiff soak soak-short

ci:
	./scripts/ci.sh

build:
	go build ./...

test:
	go test ./...

# Race-detect the packages carrying the single-writer lock discipline.
race:
	go test -race ./internal/core/ ./internal/state/

bench:
	go test -bench=Pipeline -benchmem -run='^$$' .
	go run ./cmd/pepcbench -fig 8 -fig8 pktsize

# Chaos soak (DESIGN.md §4.12): `soak-short` is the race-enabled CI
# smoke (also run by `make ci`); `soak` is the full seeded run.
soak:
	./scripts/soak.sh

soak-short:
	./scripts/soak.sh -short

# Regenerate Figures 5/6 and fail on a >10% throughput regression against
# the checked-in baselines (bench/baseline/). Not part of `make ci`:
# shared-CPU hosts are too noisy for a hard gate; run it on quiet iron.
benchdiff:
	./scripts/benchdiff.sh
