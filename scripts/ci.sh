#!/bin/sh
# ci.sh — the checks every PR must pass, in the order they fail fastest:
# build, vet, the full test suite, then the race detector over the
# packages that carry the single-writer lock discipline (internal/core's
# data/control split and internal/state's table modes), so a concurrency
# regression is machine-caught rather than review-caught.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race internal/core internal/state internal/sockio internal/hdr internal/pfcp"
go test -race ./internal/core/ ./internal/state/ ./internal/sockio/ ./internal/hdr/ ./internal/pfcp/

# Cluster e2e under the race detector: a 2-node cluster taking an attach
# storm and live steering concurrently with add/remove/kill/recover
# membership changes, plus the checkpoint-restore conservation drill —
# the cross-node locking discipline (balancer flip, per-member attach
# serialization, directory) is machine-checked end to end.
echo "== cluster e2e (-race: churn + kill/recover conservation)"
go test -race -run 'TestClusterConcurrentChurn|TestKillRecoverConservation' -count=1 ./internal/cluster/

# Multi-queue daemon smoke: pepcd's -rxqueues 2 wiring end to end under
# the race detector — per-queue rx and egress loops sharing only the
# copy-on-write PeerTable and the per-conn atomic stats.
echo "== pepcd multi-queue smoke (-rxqueues 2 under -race)"
go test -race -run 'TestPepcdMultiQueue' -count=1 ./cmd/pepcd/

# Chaos soak smoke: the short, time-bounded soak under the race detector
# (seeded fault plans; zero invariant violations required). See
# DESIGN.md §4.12 and scripts/soak.sh for the full harness.
echo "== soak smoke (scripts/soak.sh -short)"
./scripts/soak.sh -short

# Allocation guards: the per-packet path (batch lookups, arena access,
# steady-state forwarding, recycled signaling) must stay at 0 allocs/op.
# Run them apart from the main suite with -count=1 so a cached pass can't
# mask a fresh allocation, and without -race (the race runtime allocates).
echo "== allocation guards (ZeroAlloc tests)"
go test -run 'ZeroAlloc' -count=1 ./internal/pkt/ ./internal/gtp/ ./internal/core/ ./internal/state/ ./internal/sockio/ ./internal/hdr/

# Tail-latency smoke: the lat figure's five interference scenarios at
# micro scale, asserting the quantile series are present, ordered and
# lower-is-better gated. benchdiff.sh gates the absolute ceilings
# against bench/baseline/BENCH_lat.json.
echo "== tail-latency smoke (lat figure, micro scale)"
go test -run 'TestLatFigSmoke' -count=1 ./internal/experiments/

# Socket I/O smoke: the vectorized loopback sweep end to end (recvmmsg ->
# batched steer -> inline pipeline -> sendmmsg), asserting syscalls/packet
# falls with burst size. See DESIGN.md §4.13; benchdiff.sh gates the
# absolute rates against bench/baseline/BENCH_sockio.json.
echo "== sockio loopback smoke"
go test -run 'TestSockioSmoke' -count=1 ./internal/experiments/

# N4 churn smoke: the pfcp figure at micro scale — concurrent SMF
# workers running establish/modify/delete cycles against a live UPF
# service loop over loopback. See DESIGN.md §4.17; benchdiff.sh gates
# the absolute rates against bench/baseline/BENCH_pfcp.json.
echo "== pfcp churn smoke"
go test -run 'TestPFCPFigSmoke' -count=1 ./internal/experiments/

# Fuzz seed corpora: run every fuzz target's checked-in seeds once as
# plain tests (no -fuzz exploration in CI; a failing seed is a
# regression in the parse-once codec surface). Covers the GTP-U outer
# parser (incl. the fragmented-outer rejection seeds) and the PFCP
# message/IE/flow-description codecs.
echo "== fuzz seeds"
go test -run 'Fuzz' -count=1 ./internal/gtp/ ./internal/pfcp/

echo "CI green"
