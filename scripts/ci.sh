#!/bin/sh
# ci.sh — the checks every PR must pass, in the order they fail fastest:
# build, vet, the full test suite, then the race detector over the
# packages that carry the single-writer lock discipline (internal/core's
# data/control split and internal/state's table modes), so a concurrency
# regression is machine-caught rather than review-caught.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race internal/core internal/state"
go test -race ./internal/core/ ./internal/state/

echo "CI green"
