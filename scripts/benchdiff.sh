#!/bin/sh
# benchdiff.sh — regenerate the tracked figures (5/6: data-plane
# throughput under interleaved signaling, 7: multi-core scaling, 14:
# population scaling of the state layouts) with pepcbench -json and
# compare them against the checked-in baselines in bench/baseline/,
# failing on a >10% throughput drop at any swept point of the gated
# (PEPC) series.
#
# Knobs (environment):
#   BENCHDIFF_THRESHOLD=0.15        widen the tolerance on noisy hosts
#   BENCHDIFF_FIG14_THRESHOLD=0.35  figure 14's own (wider) tolerance
#   BENCHDIFF_SERIES=""             gate every series, not just PEPC*
#   BENCHDIFF_FIGS="5 6 7 14"       which figures to regenerate
#   BENCHDIFF_RUNS=3                runs folded into the baseline on --update
#
# Figure 14 (population scaling) is gated separately at a wider
# threshold: its points are dominated by forced-GC pause time, which
# swings far more run-to-run on shared hosts than packet-processing
# throughput does. The layout *comparison* it exists for (handle
# degrades less than pointer) is reported in the figure's Notes and
# tracked in EXPERIMENTS.md; this gate only catches wholesale collapses.
#
# Refresh the baselines after an intentional performance change with
#   ./scripts/benchdiff.sh --update
# which ratchets each point to the minimum across BENCHDIFF_RUNS runs —
# a conservative floor, so ordinary run-to-run noise stays inside the
# threshold and only genuine regressions trip the gate.
set -eu

cd "$(dirname "$0")/.."

THRESHOLD="${BENCHDIFF_THRESHOLD:-0.10}"
FIG14_THRESHOLD="${BENCHDIFF_FIG14_THRESHOLD:-0.35}"
SERIES="${BENCHDIFF_SERIES-PEPC}"
FIGS="${BENCHDIFF_FIGS:-5 6 7 14}"
RUNS="${BENCHDIFF_RUNS:-3}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

echo "== build"
go build -o "$OUT/pepcbench" ./cmd/pepcbench
go build -o "$OUT/benchdiff" ./cmd/benchdiff

run_figs() {
    for f in $FIGS; do
        # Figure 14 is tracked in its population-scaling mode (the paper
        # sweep has no PEPC-gated layout comparison).
        if [ "$f" = 14 ]; then
            (cd "$OUT" && ./pepcbench -fig 14 -fig14 population -json >/dev/null)
        else
            (cd "$OUT" && ./pepcbench -fig "$f" -json >/dev/null)
        fi
    done
}

if [ "${1:-}" = "--update" ]; then
    rm -f bench/baseline/BENCH_fig*.json
    i=1
    while [ "$i" -le "$RUNS" ]; do
        echo "== baseline run $i/$RUNS (figures: $FIGS)"
        run_figs
        "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" -update
        i=$((i + 1))
    done
    echo "baselines updated in bench/baseline/"
    exit 0
fi

echo "== run figures: $FIGS"
run_figs
"$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
    -threshold "$THRESHOLD" -series "$SERIES" -skip BENCH_fig14.json
case " $FIGS " in
*" 14 "*)
    "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
        -threshold "$FIG14_THRESHOLD" -series "$SERIES" -only BENCH_fig14.json
    ;;
esac
