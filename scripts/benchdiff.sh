#!/bin/sh
# benchdiff.sh — regenerate the tracked figures (5/6: data-plane
# throughput under interleaved signaling, 7: multi-core scaling, 8:
# header-engine packet-size sweep, 14: population scaling of the state
# layouts) with pepcbench -json and
# compare them against the checked-in baselines in bench/baseline/,
# failing on a >10% throughput drop at any swept point of the gated
# (PEPC) series.
#
# Knobs (environment):
#   BENCHDIFF_THRESHOLD=0.15        widen the tolerance on noisy hosts
#   BENCHDIFF_FIG8_THRESHOLD=0.35   figure 8's own (wider) tolerance
#   BENCHDIFF_FIG14_THRESHOLD=0.35  figure 14's own (wider) tolerance
#   BENCHDIFF_SOCKIO_THRESHOLD=0.35 sockio's own (wider) tolerance
#   BENCHDIFF_SOCKIOQ_THRESHOLD=0.35 sockio multi-queue series tolerance
#   BENCHDIFF_CLUSTER_THRESHOLD=0.35 cluster aggregate-Mpps tolerance
#   BENCHDIFF_LAT_THRESHOLD=0.50    tail-latency ceiling tolerance
#   BENCHDIFF_PFCP_THRESHOLD=0.35   N4 churn (sessions/s) tolerance
#   BENCHDIFF_SERIES=""             gate every series, not just PEPC*
#   BENCHDIFF_FIGS="5 6 7 8 14 sockio cluster lat pfcp"  which figures to regenerate
#   BENCHDIFF_RUNS=3                runs folded into the baseline on --update
#
# Figures 8 and 14 are gated separately at wider thresholds. Figure 14
# (population scaling): its points are dominated by forced-GC pause time, which
# swings far more run-to-run on shared hosts than packet-processing
# throughput does. The layout *comparison* it exists for (handle
# degrades less than pointer) is reported in the figure's Notes and
# tracked in EXPERIMENTS.md; this gate only catches wholesale collapses.
#
# Refresh the baselines after an intentional performance change with
#   ./scripts/benchdiff.sh --update
# which ratchets each point to the minimum across BENCHDIFF_RUNS runs —
# a conservative floor, so ordinary run-to-run noise stays inside the
# threshold and only genuine regressions trip the gate.
set -eu

cd "$(dirname "$0")/.."

THRESHOLD="${BENCHDIFF_THRESHOLD:-0.10}"
FIG8_THRESHOLD="${BENCHDIFF_FIG8_THRESHOLD:-0.35}"
FIG14_THRESHOLD="${BENCHDIFF_FIG14_THRESHOLD:-0.35}"
SOCKIO_THRESHOLD="${BENCHDIFF_SOCKIO_THRESHOLD:-0.35}"
SOCKIOQ_THRESHOLD="${BENCHDIFF_SOCKIOQ_THRESHOLD:-0.35}"
CLUSTER_THRESHOLD="${BENCHDIFF_CLUSTER_THRESHOLD:-0.35}"
LAT_THRESHOLD="${BENCHDIFF_LAT_THRESHOLD:-0.50}"
PFCP_THRESHOLD="${BENCHDIFF_PFCP_THRESHOLD:-0.35}"
SERIES="${BENCHDIFF_SERIES-PEPC}"
FIGS="${BENCHDIFF_FIGS:-5 6 7 8 14 sockio cluster lat pfcp}"
RUNS="${BENCHDIFF_RUNS:-3}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

echo "== build"
go build -o "$OUT/pepcbench" ./cmd/pepcbench
go build -o "$OUT/benchdiff" ./cmd/benchdiff

run_figs() {
    for f in $FIGS; do
        # Figure 14 is tracked in its population-scaling mode (the paper
        # sweep has no PEPC-gated layout comparison).
        if [ "$f" = 14 ]; then
            (cd "$OUT" && ./pepcbench -fig 14 -fig14 population -json >/dev/null)
        # Figure 8 is tracked in its header-engine packet-size mode (the
        # paper's migration sweep normalizes its x axis against the
        # measured base rate, so its points are not comparable run to run).
        elif [ "$f" = 8 ]; then
            (cd "$OUT" && ./pepcbench -fig 8 -fig8 pktsize -json >/dev/null)
        elif [ "$f" = sockio ]; then
            (cd "$OUT" && ./pepcbench -fig sockio -json >/dev/null)
        elif [ "$f" = cluster ]; then
            (cd "$OUT" && ./pepcbench -fig cluster -json >/dev/null)
        elif [ "$f" = lat ]; then
            (cd "$OUT" && ./pepcbench -fig lat -json >/dev/null)
        elif [ "$f" = pfcp ]; then
            (cd "$OUT" && ./pepcbench -fig pfcp -json >/dev/null)
        else
            (cd "$OUT" && ./pepcbench -fig "$f" -json >/dev/null)
        fi
    done
}

if [ "${1:-}" = "--update" ]; then
    # Only drop the baselines being regenerated, so a subset update
    # (BENCHDIFF_FIGS="8" ... --update) leaves the others ratcheted.
    for f in $FIGS; do
        if [ "$f" = sockio ] || [ "$f" = cluster ] || [ "$f" = lat ] || [ "$f" = pfcp ]; then
            rm -f "bench/baseline/BENCH_$f.json"
        else
            rm -f "bench/baseline/BENCH_fig$f.json"
        fi
    done
    i=1
    while [ "$i" -le "$RUNS" ]; do
        echo "== baseline run $i/$RUNS (figures: $FIGS)"
        run_figs
        "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" -update
        i=$((i + 1))
    done
    echo "baselines updated in bench/baseline/"
    exit 0
fi

echo "== run figures: $FIGS"
run_figs
# Gate only the figures regenerated this run; 8 and 14 get their own
# (wider) thresholds below.
MAIN_ONLY=""
for f in $FIGS; do
    case "$f" in
    8 | 14 | sockio | cluster | lat | pfcp) ;;
    *) MAIN_ONLY="$MAIN_ONLY,BENCH_fig$f.json" ;;
    esac
done
if [ -n "$MAIN_ONLY" ]; then
    "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
        -threshold "$THRESHOLD" -series "$SERIES" -only "${MAIN_ONLY#,}"
fi
# Figure 8's packet-size points are short per-cell sweeps whose absolute
# Mpps swing more on shared hosts than the long interleaved runs of
# figures 5-7; the template-vs-serialize comparison it exists for is
# asserted by TestFig8PktSizeSmoke and tracked in EXPERIMENTS.md. Its
# gate (like figure 14's) only catches wholesale collapses.
case " $FIGS " in
*" 8 "*)
    # Confirm-on-failure: a sustained load burst on a shared host can sink
    # a whole cell's median, so a first failure regenerates the figure and
    # only a repeat failure trips the gate.
    if ! "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
        -threshold "$FIG8_THRESHOLD" -series "$SERIES" -only BENCH_fig8.json; then
        echo "== figure 8 gate failed, regenerating to confirm"
        (cd "$OUT" && ./pepcbench -fig 8 -fig8 pktsize -json >/dev/null)
        "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
            -threshold "$FIG8_THRESHOLD" -series "$SERIES" -only BENCH_fig8.json
    fi
    ;;
esac
case " $FIGS " in
*" 14 "*)
    "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
        -threshold "$FIG14_THRESHOLD" -series "$SERIES" -only BENCH_fig14.json
    ;;
esac
# The sockio sweep runs over real loopback sockets, so its absolute Mpps
# inherits kernel scheduling noise on top of the usual shared-host swing;
# the batching *shape* (syscalls/packet falling 1/B, batched >= 2x the
# per-syscall baseline) is asserted by TestSockioSmoke and the ci.sh
# ratio check. Like figures 8/14, this gate only catches wholesale
# collapses, with a confirm-on-failure retry.
case " $FIGS " in
*" sockio "*)
    if ! "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
        -threshold "$SOCKIO_THRESHOLD" -series "$SERIES" -only BENCH_sockio.json; then
        echo "== sockio gate failed, regenerating to confirm"
        (cd "$OUT" && ./pepcbench -fig sockio -json >/dev/null)
        "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
            -threshold "$SOCKIO_THRESHOLD" -series "$SERIES" -only BENCH_sockio.json
    fi
    # The multi-queue series (-rxqueues scaling over the SO_REUSEPORT
    # group) gets its own gate at its own threshold: its lanes are
    # share-nothing, so a drop here means the per-queue wire path or the
    # steering program regressed, not batching. Same confirm-on-failure
    # shape as above.
    if ! "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
        -threshold "$SOCKIOQ_THRESHOLD" -series "PEPC loopback multi-queue" -only BENCH_sockio.json; then
        echo "== sockio multi-queue gate failed, regenerating to confirm"
        (cd "$OUT" && ./pepcbench -fig sockio -json >/dev/null)
        "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
            -threshold "$SOCKIOQ_THRESHOLD" -series "PEPC loopback multi-queue" -only BENCH_sockio.json
    fi
    ;;
esac
# The cluster figure's aggregate series (Maglev-sharded multi-node Mpps
# at 1/2/4 nodes) carries the same shared-host noise as figure 7's
# multi-core sweep plus per-run attach of the full population, so it is
# gated at the wide threshold with the confirm-on-failure retry. Only
# the "PEPC cluster aggregate" series is gated; the rebalance-disruption
# and recovery-time series are asserted structurally by the experiment
# itself (it errors past the Maglev bound or on lost users).
case " $FIGS " in
*" cluster "*)
    if ! "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
        -threshold "$CLUSTER_THRESHOLD" -series "$SERIES" -only BENCH_cluster.json; then
        echo "== cluster gate failed, regenerating to confirm"
        (cd "$OUT" && ./pepcbench -fig cluster -json >/dev/null)
        "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
            -threshold "$CLUSTER_THRESHOLD" -series "$SERIES" -only BENCH_cluster.json
    fi
    ;;
esac
# The tail-latency figure is the one lower-is-better gate: its series
# (p50/p99/p99.9 across the interference scenarios) carry Direction
# "down", so the ratcheted baseline is a ceiling and benchdiff fails on
# a rise beyond the threshold. Tail quantiles are the noisiest numbers
# this harness tracks — a single stray scheduler preemption lands
# directly in the p99.9 — hence the widest threshold and the same
# confirm-on-failure retry as the other wire-clocked figures. Gated
# with -series "" because the quantile series are not PEPC-prefixed.
case " $FIGS " in
*" lat "*)
    if ! "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
        -threshold "$LAT_THRESHOLD" -series "" -only BENCH_lat.json; then
        echo "== lat gate failed, regenerating to confirm"
        (cd "$OUT" && ./pepcbench -fig lat -json >/dev/null)
        "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
            -threshold "$LAT_THRESHOLD" -series "" -only BENCH_lat.json
    fi
    ;;
esac
# The N4 churn figure clocks full PFCP round trips over loopback UDP —
# every cycle is request/response wire latency plus a signaling flush —
# so its sessions/s carry the same scheduler noise as the other
# wire-clocked figures and get the wide threshold with the
# confirm-on-failure retry. Gated with -series "" because its series
# (establish+modify+delete, establish+delete) are not PEPC-prefixed.
case " $FIGS " in
*" pfcp "*)
    if ! "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
        -threshold "$PFCP_THRESHOLD" -series "" -only BENCH_pfcp.json; then
        echo "== pfcp gate failed, regenerating to confirm"
        (cd "$OUT" && ./pepcbench -fig pfcp -json >/dev/null)
        "$OUT/benchdiff" -baseline bench/baseline -fresh "$OUT" \
            -threshold "$PFCP_THRESHOLD" -series "" -only BENCH_pfcp.json
    fi
    ;;
esac
