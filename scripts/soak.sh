#!/bin/sh
# soak.sh — chaos soak harness (DESIGN.md §4.12): attach/detach/handover/
# migration churn plus uplink traffic under seeded randomized faults
# (Diameter drop/delay/error, ring overflow, worker stalls) with a
# checkpoint + crash + RecoverFrom cycle every epoch, validating the
# conservation / arena-leak / bounded-drain invariants at each epoch end.
#
# Usage:
#   scripts/soak.sh -short           time-bounded, race-enabled CI smoke
#   scripts/soak.sh [epochs [seed]]  full soak via pepcbench (default 5
#                                    epochs, seed 1); a failing seed
#                                    reproduces the identical fault stream.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-short" ]; then
	# The CI smoke: the short soak under the race detector, bounded so a
	# stall-injection pathology fails the run instead of hanging it.
	echo "== soak (-short): go test -race -run TestChaosSoakShort -timeout 120s"
	exec go test -race -run 'TestChaosSoakShort' -count=1 -timeout 120s ./internal/experiments/
fi

EPOCHS="${1:-5}"
SEED="${2:-1}"
echo "== soak: pepcbench -fig faults -faultepochs $EPOCHS -faultseed $SEED"
exec go run ./cmd/pepcbench -fig faults -faultepochs "$EPOCHS" -faultseed "$SEED"
