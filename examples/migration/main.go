// Live per-user state migration (paper §4.3, §6.6): two slices run their
// data planes while a user streams uplink traffic; the node scheduler
// migrates the user back and forth. The example shows that no packets
// are lost (buffered packets drain to the new slice), counters survive
// the move, and the added per-packet latency stays in the microsecond
// range.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"pepc"
	"pepc/internal/hdr"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
	"pepc/internal/workload"
)

func main() {
	node := pepc.NewNode(
		pepc.SliceConfig{ID: 1, UserHint: 1024, RecordLatency: true},
		pepc.SliceConfig{ID: 2, UserHint: 1024, RecordLatency: true},
	)
	res, err := node.AttachUser(0, pepc.AttachSpec{
		IMSI: 42, ENBAddr: pkt.IPv4Addr(192, 168, 0, 1), DownlinkTEID: 0x42,
	})
	if err != nil {
		log.Fatalf("attach: %v", err)
	}
	user := workload.User{IMSI: 42, UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}

	// Run both slices' data planes and sink their egress.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		s := node.Slice(i)
		wg.Add(2)
		go func() { defer wg.Done(); s.RunData(stop) }()
		go func() {
			defer wg.Done()
			for {
				b, ok := s.Egress.Dequeue()
				if ok {
					b.Free()
					continue
				}
				select {
				case <-stop:
					return
				default:
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
	}

	gen := pepc.NewTrafficGen(pepc.TrafficConfig{}, []workload.User{user})
	const total = 50_000
	const migrations = 8
	where := 0
	sent := 0
	for m := 0; m < migrations; m++ {
		for i := 0; i < total/migrations; i++ {
			// Backpressure: on a small host the generator outruns the
			// data workers; hold off while the owner's ring is deep so
			// no packets tail-drop at the demux.
			for node.Slice(0).Uplink.Len()+node.Slice(1).Uplink.Len() > 2048 {
				time.Sleep(50 * time.Microsecond)
			}
			b := gen.NextUplink()
			b.Meta.TSNanos = sim.Now()
			node.SteerUplink(b)
			sent++
		}
		// Let the current owner drain, then move the user.
		for node.Slice(where).Uplink.Len() > 0 {
			time.Sleep(100 * time.Microsecond)
		}
		target := 1 - where
		t0 := time.Now()
		if err := node.Scheduler().MigrateUser(42, where, target); err != nil {
			log.Fatalf("migration %d: %v", m, err)
		}
		fmt.Printf("migration %d: slice %d -> slice %d in %v (buffered so far: %d)\n",
			m, where, target, time.Since(t0).Round(time.Microsecond), node.Demux().Buffered.Load())
		where = target
	}

	// Wait for the pipeline to finish.
	deadline := time.After(5 * time.Second)
	for {
		f := node.Slice(0).Data().Forwarded.Load() + node.Slice(1).Data().Forwarded.Load()
		m := node.Slice(0).Data().Missed.Load() + node.Slice(1).Data().Missed.Load()
		if f+m >= total {
			break
		}
		select {
		case <-deadline:
			log.Fatalf("pipeline stalled at %d/%d", f+m, total)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()

	f := node.Slice(0).Data().Forwarded.Load() + node.Slice(1).Data().Forwarded.Load()
	missed := node.Slice(0).Data().Missed.Load() + node.Slice(1).Data().Missed.Load()
	fmt.Printf("\nsent=%d forwarded=%d missed-in-sync-window=%d (no losses: every packet accounted)\n",
		sent, f, missed)

	ue := node.Slice(where).Control().Lookup(42)
	var pkts uint64
	ue.ReadCounters(func(c *state.CounterState) { pkts = c.UplinkPackets })
	fmt.Printf("counters survived %d migrations: UplinkPackets=%d\n", migrations, pkts)

	lat := hdr.New()
	for i := 0; i < 2; i++ {
		lat.Merge(node.Slice(i).Data().LatencyUplink())
		lat.Merge(node.Slice(i).Data().LatencyDownlink())
	}
	fmt.Printf("per-packet latency: %s\n", lat.Summary())
	fmt.Println("(latencies here include ring queueing on a shared CPU; Figure 9's")
	fmt.Println(" harness isolates the migration delta — the paper reports ≤ +4µs)")
}
