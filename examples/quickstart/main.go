// Quickstart: bring up one PEPC node with an in-process HSS and PCRF,
// attach a UE through the full S1AP/NAS/SCTP signaling path, then pass
// uplink and downlink traffic through the slice data plane end to end.
package main

import (
	"fmt"
	"log"
	"time"

	"pepc"
	"pepc/internal/gtp"
	"pepc/internal/pkt"
)

func main() {
	// 1. Backends: subscriber database and policy function.
	hss := pepc.NewHSS()
	hss.ProvisionRange(310_150_000_000_001, 10, 50e6, 100e6) // 10 subscribers
	pcrf := pepc.NewPCRF()

	// 2. A node with one slice, proxied to the backends.
	node := pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: 1024})
	node.AttachProxy(pepc.NewProxy(hss, pcrf))
	slice := node.Slice(0)

	// 3. Signaling: an eNodeB connects over SCTP and attaches a UE with
	// real mutual authentication (AKA challenge/response).
	enbWire, coreWire := pepc.SCTPPipe(1024)
	acceptDone := make(chan error, 1)
	go func() {
		assoc, err := pepc.SCTPAccept(coreWire, pepc.SCTPConfig{Tag: 2})
		if err != nil {
			acceptDone <- err
			return
		}
		srv, err := node.ServeS1AP(0, assoc)
		if err != nil {
			acceptDone <- err
			return
		}
		acceptDone <- nil
		go srv.Serve(nil)
	}()
	assoc, err := pepc.SCTPDial(enbWire, pepc.SCTPConfig{Tag: 1})
	if err != nil {
		log.Fatalf("sctp dial: %v", err)
	}
	if err := <-acceptDone; err != nil {
		log.Fatalf("sctp accept: %v", err)
	}

	base := pepc.NewENB(pkt.IPv4Addr(192, 168, 1, 1), 1, 0x100, assoc)
	ue := pepc.NewUE(310_150_000_000_001)
	if err := base.Attach(ue); err != nil {
		log.Fatalf("attach: %v", err)
	}
	fmt.Printf("UE %d attached: GUTI=%#x IP=%s uplink TEID=%#x\n",
		ue.IMSI, ue.GUTI, pkt.FormatIPv4(ue.UEAddr), ue.UplinkTEID)

	// 4. Data plane: run the slice workers and push one uplink packet
	// (GTP-U from the eNodeB) and one downlink packet (IP toward the UE).
	stop := make(chan struct{})
	go slice.RunData(stop)
	defer close(stop)
	time.Sleep(10 * time.Millisecond) // let the worker sync the new user

	up := buildUplink(ue)
	node.SteerUplink(up)
	down := buildDownlink(ue)
	node.SteerDownlink(down)

	deadline := time.After(2 * time.Second)
	for got := 0; got < 2; {
		b, ok := slice.Egress.Dequeue()
		if !ok {
			select {
			case <-deadline:
				log.Fatalf("egress timed out (forwarded=%d dropped=%d missed=%d)",
					slice.Data().Forwarded.Load(), slice.Data().Dropped.Load(), slice.Data().Missed.Load())
			default:
				time.Sleep(time.Millisecond)
			}
			continue
		}
		got++
		if teid, err := gtp.PeekTEID(b.Bytes()); err == nil {
			fmt.Printf("downlink egress: GTP-U toward eNodeB, TEID=%#x, %d bytes\n", teid, b.Len())
		} else {
			fmt.Printf("uplink egress: decapsulated IP packet, %d bytes\n", b.Len())
		}
		b.Free()
	}
	fmt.Println("quickstart complete: attach + uplink + downlink all verified")
}

// buildUplink wraps a small UDP datagram from the UE in GTP-U, as the
// eNodeB would.
func buildUplink(ue *pepc.UE) *pepc.Buf {
	b := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	payload := []byte("hello from the UE")
	inner := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + len(payload)
	data, _ := b.Append(inner)
	ip := pkt.IPv4{Length: uint16(inner), TTL: 64, Protocol: pkt.ProtoUDP,
		Src: ue.UEAddr, Dst: pkt.IPv4Addr(8, 8, 8, 8)}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: 5000, DstPort: 53, Length: uint16(pkt.UDPHeaderLen + len(payload))}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	copy(data[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:], payload)
	if err := gtp.EncapGPDU(b, ue.UplinkTEID, 0, ue.CoreAddr); err != nil {
		log.Fatalf("encap: %v", err)
	}
	return b
}

// buildDownlink is a plain IP packet addressed to the UE.
func buildDownlink(ue *pepc.UE) *pepc.Buf {
	b := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	inner := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + 8
	data, _ := b.Append(inner)
	ip := pkt.IPv4{Length: uint16(inner), TTL: 64, Protocol: pkt.ProtoUDP,
		Src: pkt.IPv4Addr(8, 8, 8, 8), Dst: ue.UEAddr}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: 53, DstPort: 5000, Length: uint16(pkt.UDPHeaderLen + 8)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	return b
}
