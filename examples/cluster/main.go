// Cluster: the end-to-end architecture of §3.4 — a Maglev-style load
// balancer fronts two PEPC nodes behind one virtual IP; users attach and
// are served by whichever node the balancer assigns; then a user is
// migrated across nodes (the §3.5 "move processing closer to the user"
// case) and the balancer override redirects its traffic with no loss of
// state.
package main

import (
	"fmt"
	"log"

	"pepc"
	"pepc/internal/lb"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
	"pepc/internal/workload"
)

func main() {
	const users = 1_000

	// Two PEPC nodes behind the cluster VIP.
	nodes := []*pepc.Node{
		pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: users}),
		pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: users}),
	}
	balancer, err := lb.New([]string{"node-0", "node-1"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	// Migration overrides: users explicitly moved off their hash-assigned
	// node (a production balancer programs these as connection overrides).
	override := map[uint32]int{} // uplink TEID -> node

	// Attach each user on the node its IMSI hashes to.
	pop := make([]workload.User, users)
	home := make([]int, users)
	counts := [2]int{}
	for i := 0; i < users; i++ {
		imsi := uint64(i + 1)
		nodeIdx, _, err := balancer.PickIMSI(imsi)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nodes[nodeIdx].AttachUser(0, pepc.AttachSpec{
			IMSI: imsi, ENBAddr: pkt.IPv4Addr(192, 168, 0, 1), DownlinkTEID: uint32(i + 1),
		})
		if err != nil {
			log.Fatalf("attach %d: %v", imsi, err)
		}
		pop[i] = workload.User{IMSI: imsi, UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
		home[i] = nodeIdx
		counts[nodeIdx]++
	}
	nodes[0].Slice(0).Data().SyncUpdates()
	nodes[1].Slice(0).Data().SyncUpdates()
	fmt.Printf("cluster: %d users balanced %d/%d across two nodes\n", users, counts[0], counts[1])

	// steer sends one uplink packet through the balancer to its node.
	gens := []*pepc.TrafficGen{
		pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: nodes[0].Slice(0).Config().CoreAddr}, pop),
		pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: nodes[1].Slice(0).Config().CoreAddr}, pop),
	}
	steer := func(u workload.User, nodeIdx int) {
		b := gens[nodeIdx].UplinkFor(u)
		nodes[nodeIdx].SteerUplink(b)
		// Drive the node's data plane inline.
		s := nodes[nodeIdx].Slice(0)
		batch := make([]*pepc.Buf, 8)
		for {
			n := s.Uplink.DequeueBatch(batch)
			if n == 0 {
				break
			}
			s.Data().ProcessUplinkBatch(batch[:n], sim.Now())
		}
		for {
			out, ok := s.Egress.Dequeue()
			if !ok {
				break
			}
			out.Free()
		}
	}
	routeOf := func(u workload.User, homeIdx int) int {
		if n, ok := override[u.UplinkTEID]; ok {
			return n
		}
		return homeIdx
	}

	// Pass one packet per user through the cluster.
	for i, u := range pop {
		steer(u, routeOf(u, home[i]))
	}
	f0 := nodes[0].Slice(0).Data().Forwarded.Load()
	f1 := nodes[1].Slice(0).Data().Forwarded.Load()
	fmt.Printf("traffic: node-0 forwarded %d, node-1 forwarded %d (total %d)\n", f0, f1, f0+f1)

	// Move user 1 to the other node: export, ship, import, override.
	u := pop[0]
	src := home[0]
	dst := 1 - src
	msg, err := nodes[src].Scheduler().ExportUser(u.IMSI, 0)
	if err != nil {
		log.Fatalf("export: %v", err)
	}
	if err := nodes[dst].Scheduler().ImportUser(msg, 0); err != nil {
		log.Fatalf("import: %v", err)
	}
	override[u.UplinkTEID] = dst
	nodes[dst].Slice(0).Data().SyncUpdates()
	fmt.Printf("migrated user %d: node-%d -> node-%d\n", u.IMSI, src, dst)

	// Its traffic now flows on the new node, counters intact.
	steer(u, routeOf(u, home[0]))
	ue := nodes[dst].Slice(0).Control().Lookup(u.IMSI)
	var pkts uint64
	ue.ReadCounters(func(c *state.CounterState) { pkts = c.UplinkPackets })
	fmt.Printf("user %d on node-%d: UplinkPackets=%d (1 before + 1 after the move)\n", u.IMSI, dst, pkts)
}
