// Signaling storm: the paper's motivating failure mode (§2.2). The same
// data-plane load runs against PEPC and against the legacy decomposed
// EPC (Industrial#1 model) while the signaling rate ramps up. PEPC's
// consolidated single-writer state absorbs the storm; the legacy chain's
// cross-component synchronization starves its data plane.
package main

import (
	"fmt"
	"log"
	"time"

	"pepc"
	"pepc/internal/legacy"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

const (
	users   = 50_000
	packets = 300_000
)

func main() {
	fmt.Printf("signaling storm: %d users, %d data packets per point\n\n", users, packets)
	fmt.Printf("%-22s %12s %12s\n", "signaling:data", "PEPC Mpps", "legacy Mpps")
	for _, ratio := range []int{1000, 100, 10, 1} {
		p := measurePEPC(ratio)
		l := measureLegacy(ratio)
		fmt.Printf("1:%-20d %12.2f %12.2f\n", ratio, p, l)
	}
	fmt.Println("\npaper shape (§6.3): PEPC sustains Mpps-scale throughput to 1:1;")
	fmt.Println("Industrial#1 drops to ~0 beyond 1:100 signaling:data.")
}

func eventsPerK(ratio int) float64 { return 1000.0 / float64(ratio) }

func measurePEPC(ratio int) float64 {
	s := pepc.NewSlice(pepc.SliceConfig{ID: 1, UserHint: users})
	pop := make([]workload.User, users)
	for i := range pop {
		res, err := s.Control().Attach(pepc.AttachSpec{
			IMSI: uint64(i + 1), ENBAddr: pkt.IPv4Addr(192, 168, 0, 1), DownlinkTEID: uint32(i + 1),
		})
		if err != nil {
			log.Fatalf("pepc attach: %v", err)
		}
		pop[i] = workload.User{IMSI: uint64(i + 1), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
	}
	s.Data().SyncUpdates()
	gen := pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: s.Config().CoreAddr}, pop)
	sg := workload.NewSignalingGen(workload.EventAttach, pop)
	batch := make([]*pepc.Buf, 0, 32)
	debt := 0.0
	start := time.Now()
	for sent := 0; sent < packets; {
		batch = batch[:0]
		for i := 0; i < 32 && sent+len(batch) < packets; i++ {
			batch = append(batch, gen.NextUplink())
		}
		s.Data().ProcessUplinkBatch(batch, sim.Now())
		sent += len(batch)
		debt += float64(len(batch)) * eventsPerK(ratio) / 1000
		for debt >= 1 {
			s.Control().AttachEvent(sg.Next().IMSI)
			debt--
		}
		for {
			b, ok := s.Egress.Dequeue()
			if !ok {
				break
			}
			b.Free()
		}
	}
	return float64(packets) / time.Since(start).Seconds() / 1e6
}

func measureLegacy(ratio int) float64 {
	e := legacy.New(legacy.Config{Preset: legacy.Industrial1, UserHint: users})
	pop := make([]workload.User, users)
	for i := range pop {
		teid, ip, err := e.Attach(uint64(i+1), uint32(i+1), pkt.IPv4Addr(192, 168, 0, 1))
		if err != nil {
			log.Fatalf("legacy attach: %v", err)
		}
		pop[i] = workload.User{IMSI: uint64(i + 1), UplinkTEID: teid, UEAddr: ip}
	}
	e.Egress = func(b *pepc.Buf) { b.Free() }
	gen := pepc.NewTrafficGen(pepc.TrafficConfig{}, pop)
	sg := workload.NewSignalingGen(workload.EventAttach, pop)
	batch := make([]*pepc.Buf, 0, 32)
	debt := 0.0
	start := time.Now()
	for sent := 0; sent < packets; {
		batch = batch[:0]
		for i := 0; i < 32 && sent+len(batch) < packets; i++ {
			batch = append(batch, gen.NextUplink())
		}
		e.ProcessUplinkBatch(batch, 0)
		sent += len(batch)
		debt += float64(len(batch)) * eventsPerK(ratio) / 1000
		for debt >= 1 {
			e.AttachEvent(sg.Next().IMSI)
			debt--
		}
	}
	return float64(packets) / time.Since(start).Seconds() / 1e6
}
