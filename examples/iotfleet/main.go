// IoT fleet: the paper's §7.4 customization in action. A fleet of
// stateless IoT devices (single application, best-effort service) is
// served from a pre-assigned TEID pool with no per-device state, next to
// ordinary smartphone users with full per-user state and policing. The
// example passes identical traffic through both paths and prints the
// per-packet cost difference the customization buys.
package main

import (
	"fmt"
	"log"
	"time"

	"pepc"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

func main() {
	const (
		smartphones = 20_000
		iotDevices  = 20_000
		packets     = 400_000
	)

	slice := pepc.NewSlice(pepc.SliceConfig{
		ID:           1,
		UserHint:     smartphones,
		IoTTEIDBase:  0xE000_0000,
		IoTTEIDCount: iotDevices + 1,
	})

	// Smartphones: full attach, per-user state, AMBR policing.
	phones := make([]workload.User, smartphones)
	for i := range phones {
		res, err := slice.Control().Attach(pepc.AttachSpec{
			IMSI:         uint64(i + 1),
			ENBAddr:      pkt.IPv4Addr(192, 168, 0, 1),
			DownlinkTEID: uint32(i + 1),
			// No rate policing: the comparison isolates the per-user
			// state lookup and lock cost the IoT path skips (§7.4).
		})
		if err != nil {
			log.Fatalf("attach: %v", err)
		}
		phones[i] = workload.User{IMSI: uint64(i + 1), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
	}
	slice.Data().SyncUpdates()

	// IoT devices: a TEID from the pool is the whole "session".
	iot := make([]workload.User, iotDevices)
	for i := range iot {
		teid, ok := slice.Control().AllocateIoT()
		if !ok {
			log.Fatal("IoT pool exhausted")
		}
		iot[i] = workload.User{IMSI: uint64(1_000_000 + i), UplinkTEID: teid, UEAddr: pkt.IPv4Addr(100, 99, 0, 1) + uint32(i)}
	}

	fmt.Printf("slice ready: %d smartphones with state, %d stateless IoT devices\n",
		slice.Users(), iotDevices)

	measure := func(name string, users []workload.User) float64 {
		gen := pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: slice.Config().CoreAddr}, users)
		batch := make([]*pepc.Buf, 0, 32)
		start := time.Now()
		for sent := 0; sent < packets; {
			batch = batch[:0]
			for i := 0; i < 32 && sent+len(batch) < packets; i++ {
				batch = append(batch, gen.NextUplink())
			}
			slice.Data().ProcessUplinkBatch(batch, sim.Now())
			sent += len(batch)
			for {
				b, ok := slice.Egress.Dequeue()
				if !ok {
					break
				}
				b.Free()
			}
		}
		mpps := float64(packets) / time.Since(start).Seconds() / 1e6
		fmt.Printf("  %-22s %6.2f Mpps\n", name, mpps)
		return mpps
	}

	fmt.Printf("uplink throughput over %d packets each:\n", packets)
	phoneRate := measure("smartphone path", phones)
	iotRate := measure("stateless IoT path", iot)
	fmt.Printf("IoT customization speedup: %.0f%% (paper §7.4: up to ~38%% at 100%% IoT)\n",
		(iotRate-phoneRate)/phoneRate*100)
	fmt.Printf("IoT packets that skipped state lookup: %d\n", slice.Data().IoTFast.Load())
}
