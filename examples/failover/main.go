// Failover: the §8 failure-handling direction made concrete. A primary
// node serves users and streams periodic checkpoints (the same per-user
// snapshots migration uses); when the node "fails", a recovery node
// restores the checkpoint, re-registers every user, and traffic resumes
// with identifiers, QoS state and charging counters intact.
package main

import (
	"bytes"
	"fmt"
	"log"

	"pepc"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
	"pepc/internal/workload"
)

func main() {
	const users = 5_000

	// Primary node with an attached population and some traffic history.
	primary := pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: users})
	pop := make([]workload.User, users)
	for i := 0; i < users; i++ {
		res, err := primary.AttachUser(0, pepc.AttachSpec{
			IMSI: uint64(i + 1), ENBAddr: pkt.IPv4Addr(192, 168, 0, 1),
			DownlinkTEID: uint32(i + 1), AMBRUplink: 100e6,
		})
		if err != nil {
			log.Fatalf("attach: %v", err)
		}
		pop[i] = workload.User{IMSI: uint64(i + 1), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
	}
	primary.Slice(0).Data().SyncUpdates()

	gen := pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: primary.Slice(0).Config().CoreAddr}, pop)
	passTraffic(primary, gen, 50_000)
	fmt.Printf("primary: %d users, %d packets forwarded\n",
		primary.Slice(0).Users(), primary.Slice(0).Data().Forwarded.Load())

	// Periodic checkpoint to stable storage / a standby.
	var stable bytes.Buffer
	n, err := primary.Slice(0).Checkpoint(&stable)
	if err != nil {
		log.Fatalf("checkpoint: %v", err)
	}
	fmt.Printf("checkpoint: %d users, %d bytes (%.0f B/user)\n",
		n, stable.Len(), float64(stable.Len())/float64(n))

	// ---- the primary node fails here ----

	// Recovery node restores and re-registers; the cluster balancer
	// would now direct the failed node's virtual-IP share here.
	recovery := pepc.NewNode(pepc.SliceConfig{ID: 1, UserHint: users})
	restored, err := recovery.Slice(0).RestoreCheckpoint(bytes.NewReader(stable.Bytes()))
	if err != nil {
		log.Fatalf("restore: %v", err)
	}
	registered, err := recovery.RegisterRestored(0)
	if err != nil {
		log.Fatalf("register: %v", err)
	}
	recovery.Slice(0).Data().SyncUpdates()
	fmt.Printf("recovery: restored %d users, registered %d demux entries\n", restored, registered)

	// Traffic continues against the same identifiers.
	gen2 := pepc.NewTrafficGen(pepc.TrafficConfig{CoreAddr: recovery.Slice(0).Config().CoreAddr}, pop)
	passTraffic(recovery, gen2, 50_000)
	fmt.Printf("recovery: %d packets forwarded post-failover (missed=%d)\n",
		recovery.Slice(0).Data().Forwarded.Load(), recovery.Slice(0).Data().Missed.Load())

	// Charging continuity: a user's counters include the pre-failure era.
	ue := recovery.Slice(0).Control().Lookup(1)
	var up uint64
	ue.ReadCounters(func(c *state.CounterState) { up = c.UplinkPackets })
	fmt.Printf("user 1 uplink packets across the failure: %d (10 before + 10 after)\n", up)
}

func passTraffic(n *pepc.Node, gen *pepc.TrafficGen, packets int) {
	s := n.Slice(0)
	batch := make([]*pepc.Buf, 0, 32)
	for sent := 0; sent < packets; {
		batch = batch[:0]
		for i := 0; i < 32 && sent+len(batch) < packets; i++ {
			batch = append(batch, gen.NextUplink())
		}
		s.Data().ProcessUplinkBatch(batch, sim.Now())
		sent += len(batch)
		for {
			b, ok := s.Egress.Dequeue()
			if !ok {
				break
			}
			b.Free()
		}
	}
}
